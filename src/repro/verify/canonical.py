"""Canonical JSON: one deterministic byte encoding per pipeline value.

Every conformance feature in :mod:`repro.verify` reduces to the same
question — *are these two pipeline values the same result?* — and the
only robust way to answer it across processes, worker counts, and cache
states is to map each value onto one canonical, JSON-compatible tree and
compare (or hash) that.  This module owns the mapping:

- :func:`canonicalize` folds any value the analysis registry produces —
  dataclasses, enums, sets, tuples, bytes, nested object graphs like
  :class:`~repro.core.chains.ValidationSurvey` — into plain
  JSON-compatible data, deterministically.  Container types are
  normalized (tuples become lists, sets are sorted, dict entries are
  sorted by an encoded key), objects are expanded by type with their
  fields sorted, and long byte strings collapse to a SHA-256 so a
  certificate chain never bloats a snapshot.
- :func:`canonical_bytes` / :func:`digest` serialize that tree with
  fixed ``json.dumps`` settings (sorted keys, tight separators, ASCII
  only, NaN forbidden), so equal values produce equal bytes on any
  platform.
- :func:`first_divergence` walks two canonical trees in lockstep and
  names the first path where they disagree — the structured diff the
  baseline checker and the equivalence matrix render, instead of a bare
  "mismatch".

Volatile telemetry: a few fields measure the *run* rather than the
*study* (wall-clock inside :meth:`ProbeStats.to_json`).  Keys listed in
:data:`VOLATILE_KEYS` are scrubbed to a placeholder during
canonicalization so byte-identity claims quantify results, not timings.
"""

import dataclasses
import enum
import hashlib
import json

#: dict keys whose values measure wall-clock (or otherwise vary between
#: byte-identical runs); scrubbed during canonicalization.
VOLATILE_KEYS = frozenset({"wall_seconds"})

#: replaces every scrubbed value, so presence is still visible.
VOLATILE_PLACEHOLDER = "<volatile>"

#: bytes longer than this are collapsed to their SHA-256.
_BYTES_INLINE_LIMIT = 64


def canonicalize(value):
    """Fold ``value`` into a deterministic JSON-compatible tree.

    Two values canonicalize to the same tree iff the conformance
    harness considers them the same result.
    """
    return _fold(value, seen=())


def _fold(value, seen):
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # JSON has no NaN/Infinity; encode them as tagged strings so
        # canonical_bytes never needs allow_nan.
        if value != value:
            return {"__float__": "nan"}
        if value in (float("inf"), float("-inf")):
            return {"__float__": repr(value)}
        return value
    if isinstance(value, (bytes, bytearray)):
        data = bytes(value)
        if len(data) <= _BYTES_INLINE_LIMIT:
            return {"__bytes__": data.hex()}
        return {"__bytes_sha256__": hashlib.sha256(data).hexdigest(),
                "length": len(data)}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    ident = id(value)
    if ident in seen:  # cyclic object graph: terminate, deterministically
        return {"__cycle__": type(value).__name__}
    seen = seen + (ident,)
    if isinstance(value, dict):
        entries = []
        for key, item in value.items():
            encoded_key = _key_text(key)
            folded = (VOLATILE_PLACEHOLDER
                      if isinstance(key, str) and key in VOLATILE_KEYS
                      else _fold(item, seen))
            entries.append((encoded_key, folded))
        entries.sort(key=lambda pair: pair[0])
        return dict(entries)
    if isinstance(value, (list, tuple)):
        return [_fold(item, seen) for item in value]
    if isinstance(value, (set, frozenset)):
        folded = [_fold(item, seen) for item in value]
        return {"__set__": sorted(folded, key=_sort_text)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {f.name: _fold(getattr(value, f.name), seen)
                  for f in dataclasses.fields(value)
                  if f.name not in VOLATILE_KEYS}
        return {"__dataclass__": type(value).__name__, "fields": fields}
    state = getattr(value, "__dict__", None)
    if state is not None:
        fields = {name: _fold(item, seen)
                  for name, item in sorted(state.items())
                  if name not in VOLATILE_KEYS}
        return {"__object__": type(value).__name__, "fields": fields}
    # Last resort (slotted/opaque objects): repr is assumed stable for
    # the value types the pipeline produces.
    return {"__repr__": repr(value)}


def _key_text(key):
    """A deterministic string encoding of an arbitrary dict key."""
    if isinstance(key, str):
        return key
    return _dumps(_fold(key, seen=()))


def _sort_text(folded):
    """A total order over folded values (for set canonicalization)."""
    return _dumps(folded)


def _dumps(tree):
    return json.dumps(tree, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, allow_nan=False)


def canonical_bytes(value):
    """The canonical UTF-8 byte serialization of ``value``."""
    return _dumps(canonicalize(value)).encode("utf-8")


def digest(value):
    """SHA-256 hex digest of :func:`canonical_bytes`."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()


# --- structured diff -----------------------------------------------------------------


def _preview(tree, limit=80):
    text = _dumps(tree)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def first_divergence(expected, actual, path="$"):
    """The first path where two canonical trees disagree, or ``None``.

    Returns a ``(path, detail)`` pair; ``path`` is a JSONPath-ish
    locator (``$.fields.matched.f1``) and ``detail`` one human line.
    Dict keys are visited in sorted order and lists by index, so "first"
    is deterministic.
    """
    if type(expected) is not type(actual):
        return (path, f"type changed: {type(expected).__name__} -> "
                      f"{type(actual).__name__}")
    if isinstance(expected, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in actual:
                return (f"{path}.{key}",
                        f"missing (baseline has {_preview(expected[key])})")
            if key not in expected:
                return (f"{path}.{key}",
                        f"unexpected (run has {_preview(actual[key])})")
            found = first_divergence(expected[key], actual[key],
                                     f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(expected, list):
        for index, (left, right) in enumerate(zip(expected, actual)):
            found = first_divergence(left, right, f"{path}[{index}]")
            if found is not None:
                return found
        if len(expected) != len(actual):
            return (f"{path}[{min(len(expected), len(actual))}]",
                    f"length changed: {len(expected)} -> {len(actual)}")
        return None
    if expected != actual:
        return (path, f"{_preview(expected)} != {_preview(actual)}")
    return None
