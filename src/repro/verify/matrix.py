"""The equivalence matrix: one study, many execution modes, one answer.

The repository's headline determinism claims — serial vs ``--jobs N``,
cold vs warm cache, fault-injected vs clean (given retry budget), any
trust-store spelling — were each spot-checked in whichever test file
introduced them.  The matrix enforces them *systematically*: it executes
the full pipeline under a configurable grid of
:class:`ExecutionMode`\\ s, has the :class:`AnalysisScheduler` report a
canonical digest per analysis node in every mode, and asserts that all
modes agree node-for-node.  A failure names the first pair of modes and
the first analysis node (paper order) whose digests disagree — the
starting point for bisecting a determinism regression.

Every perf/scale PR gets the same cheap proof obligation: run
``repro verify matrix`` (or ``make verify``) and show the grid still
collapses to a single digest column.
"""

import tempfile
from dataclasses import dataclass, field, replace

from repro.config import MAJOR_STORES, StudyConfig
from repro.core.pipeline import analysis_stage_names, run_full_study
from repro.study import Study
from repro.verify.baseline import VOLATILE_NODES
from repro.verify.canonical import digest


@dataclass(frozen=True)
class ExecutionMode:
    """One way of executing the identical study.

    Attributes:
        name: display label (also the report column).
        jobs: scheduler/probe worker threads.
        cache: ``"off"`` (no store), ``"cold"`` (fresh store), or
            ``"warm"`` (same store, second run — every node a hit).
        fault_rates: when set, probing goes through a
            :class:`~repro.probing.engine.FaultInjector` with these
            rates (keys: ``transient_rate``/``reset_rate``/
            ``slow_rate``); ``max_faulty_attempts`` stays strictly
            below the retry budget so every fault is recovered.
        retries: probe attempt budget override (fault modes need > the
            injector's ``max_faulty_attempts``).
        trust_stores: trust-store selection spelling (any permutation
            must produce identical artifacts).
        match_mode: :mod:`repro.match` engine mode the pipeline runs
            under (``"exact"`` or ``"sketch"``) — the proof obligation
            that sketch-pruned candidate generation never changes a
            result.
        backend: ``"inline"`` runs the pipeline in this process;
            ``"cluster"`` runs it as a one-unit campaign through a real
            :mod:`repro.fabric` coordinator + HTTP server + fabric
            worker — the proof obligation that the distributed path
            produces byte-identical per-node digests.
    """

    name: str
    jobs: int = 1
    cache: str = "off"
    fault_rates: tuple = ()   # of (rate name, value) pairs; frozen-able
    retries: int = None
    trust_stores: tuple = None
    match_mode: str = "exact"
    backend: str = "inline"


def default_modes(parallel_jobs=4):
    """The standard grid behind ``repro verify matrix``."""
    return (
        ExecutionMode("serial"),
        ExecutionMode(f"jobs{parallel_jobs}", jobs=parallel_jobs),
        ExecutionMode("cache-cold", cache="cold"),
        ExecutionMode("cache-warm", cache="warm"),
        ExecutionMode("faults-retried",
                      fault_rates=(("transient_rate", 0.2),
                                   ("reset_rate", 0.1)),
                      retries=4),
        ExecutionMode("stores-permuted",
                      trust_stores=tuple(reversed(MAJOR_STORES))),
        ExecutionMode("sketch", match_mode="sketch"),
        ExecutionMode("cluster", backend="cluster"),
    )


@dataclass
class ModeResult:
    """Per-node digests one mode produced."""

    mode: ExecutionMode
    node_digests: dict

    def comparable_digests(self):
        return {name: value
                for name, value in self.node_digests.items()
                if name not in VOLATILE_NODES}


@dataclass
class MatrixReport:
    """Pairwise equivalence verdict over all executed modes."""

    results: list = field(default_factory=list)
    #: (mode a, mode b, node, digest a, digest b) per disagreement.
    mismatches: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.mismatches

    @property
    def first_mismatch(self):
        return self.mismatches[0] if self.mismatches else None

    def mode_names(self):
        return [result.mode.name for result in self.results]

    def render(self):
        lines = [f"equivalence matrix: {len(self.results)} modes "
                 f"({', '.join(self.mode_names())})"]
        if self.ok:
            nodes = len(self.results[0].comparable_digests()) \
                if self.results else 0
            lines.append(f"equivalent: all modes agree on all {nodes} "
                         f"analysis nodes")
        else:
            first = self.first_mismatch
            lines.append(f"NOT equivalent: {len(self.mismatches)} "
                         f"node disagreements; first: node "
                         f"{first[2]!r} differs between "
                         f"{first[0]!r} and {first[1]!r}")
            for mode_a, mode_b, node, dig_a, dig_b in self.mismatches:
                lines.append(f"  {node}: {mode_a}={dig_a[:12]} "
                             f"{mode_b}={dig_b[:12]}")
        return "\n".join(lines)

    def to_json(self):
        return {
            "ok": self.ok,
            "modes": self.mode_names(),
            "node_digests": {result.mode.name: result.node_digests
                             for result in self.results},
            "mismatches": [
                {"mode_a": a, "mode_b": b, "node": node,
                 "digest_a": da, "digest_b": db}
                for a, b, node, da, db in self.mismatches],
        }


class EquivalenceMatrix:
    """Executes a mode grid and compares per-node digests pairwise."""

    def __init__(self, base_config=None, modes=None, workdir=None):
        self.base_config = base_config if base_config is not None \
            else StudyConfig()
        self.modes = tuple(modes) if modes is not None \
            else default_modes()
        self.workdir = workdir

    # -- mode execution -------------------------------------------------------

    def _mode_config(self, mode):
        config = replace(self.base_config, probe_jobs=max(1, mode.jobs))
        if mode.trust_stores is not None:
            config = replace(config, trust_stores=mode.trust_stores)
        if mode.retries is not None:
            config = replace(config,
                             retry=replace(config.retry,
                                           max_attempts=mode.retries))
        return config

    def _mode_study(self, mode, config):
        # A fresh Study per mode: matrix modes must never pollute the
        # global get_study memo (fault-injected certificates especially).
        study = Study(config)
        if mode.fault_rates:
            from repro.probing.engine import FaultInjector, ProbeEngine
            rates = dict(mode.fault_rates)
            budget = config.retry.max_attempts
            injector = FaultInjector(
                study.network,
                max_faulty_attempts=min(2, budget - 1), **rates)
            engine = ProbeEngine(injector, vantages=config.vantages,
                                 jobs=config.probe_jobs,
                                 retry=config.retry,
                                 seed=study.network.seed)
            snis = [spec.fqdn for spec in study.world.servers]
            study.adopt_certificates(engine.probe_all(snis))
        return study

    def _mode_store(self, mode, root):
        from repro.store import ArtifactStore
        if mode.cache == "off":
            return None
        return ArtifactStore(root)

    def _run_cluster_mode(self, mode, config, workdir):
        """One-unit campaign through a real coordinator + fabric worker.

        The worker is a thread (digests cannot depend on the process
        model — that is the point), but every byte still crosses the
        HTTP lease protocol and comes back through the campaign
        ledger, exactly as a multi-machine run would.
        """
        import threading
        from repro.fabric import FabricCoordinator, FabricWorker, \
            make_fabric_server
        from repro.store.campaign import CampaignIndex
        from repro.sweep.grid import SweepUnit
        unit = SweepUnit(name=mode.name, seed=config.seed,
                         retries=config.retry.max_attempts,
                         trust_stores=config.trust_stores,
                         fault_rates=mode.fault_rates)
        index = CampaignIndex.create(
            f"{workdir}/{mode.name}-campaign.json", [unit.to_json()],
            unit.stage)
        coordinator = FabricCoordinator(index)
        server, _ = make_fabric_server(coordinator)
        host, port = server.server_address[:2]
        serving = threading.Thread(target=server.serve_forever,
                                   daemon=True)
        serving.start()
        try:
            worker = FabricWorker(f"http://{host}:{port}",
                                  worker_id=f"matrix-{mode.name}")
            worker.run()
        finally:
            server.shutdown()
            server.server_close()
        result = index.completed.get(unit.key())
        if result is None:
            raise RuntimeError(
                f"cluster mode {mode.name!r} completed no unit: "
                f"{index.failed or 'no result recorded'}")
        return ModeResult(mode=mode,
                          node_digests=dict(result["node_digests"]))

    def run_mode(self, mode, workdir):
        """Execute one mode; returns its :class:`ModeResult`."""
        from repro.match import engine_mode
        config = self._mode_config(mode)
        if mode.backend == "cluster":
            return self._run_cluster_mode(mode, config, workdir)
        store = self._mode_store(mode, f"{workdir}/{mode.name}")
        with engine_mode(mode.match_mode):
            if mode.cache == "warm":
                # Populate, then measure the all-hits run with fresh
                # state.
                warmup = self._mode_study(mode,
                                          config).attach_store(store)
                run_full_study(warmup, jobs=mode.jobs)
            study = self._mode_study(mode, config).attach_store(store)
            digests = {}
            run_full_study(
                study, jobs=mode.jobs,
                node_observer=lambda stage, packed:
                    digests.__setitem__(stage, digest(packed)))
        return ModeResult(mode=mode, node_digests=digests)

    # -- the grid -------------------------------------------------------------

    def run(self):
        """Execute every mode and compare; returns a :class:`MatrixReport`."""
        results = []
        with tempfile.TemporaryDirectory(
                dir=self.workdir, prefix="repro-verify-") as workdir:
            for mode in self.modes:
                results.append(self.run_mode(mode, workdir))
        return compare_results(results)


def compare_results(results):
    """Compare every mode against the first; returns a :class:`MatrixReport`.

    Nodes are visited in paper order (``analysis_stage_names``), so the
    report's *first* mismatch is the earliest pipeline node that broke
    equivalence, not an alphabetical accident.
    """
    report = MatrixReport(results=list(results))
    if not report.results:
        return report
    reference = report.results[0]
    ref_digests = reference.comparable_digests()
    node_order = [name for name in analysis_stage_names()
                  if name in ref_digests]
    node_order += [name for name in sorted(ref_digests)
                   if name not in node_order]
    for other in report.results[1:]:
        other_digests = other.comparable_digests()
        names = node_order + [name for name in sorted(other_digests)
                              if name not in ref_digests]
        for name in names:
            dig_a = ref_digests.get(name, "<absent>")
            dig_b = other_digests.get(name, "<absent>")
            if dig_a != dig_b:
                report.mismatches.append(
                    (reference.mode.name, other.mode.name, name,
                     dig_a, dig_b))
    return report
