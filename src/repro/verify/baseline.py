"""Golden baselines: record the pipeline's outputs once, check forever.

A *baseline* is one JSON file snapshotting every pipeline artifact for
one study configuration — each analysis node's canonical tree and
digest, plus the derived artifacts (the anonymized capture, the
certificate summary rows, the markdown report, every figure's data).
The file is keyed by :meth:`repro.config.StudyConfig.artifact_digest`
plus the package version, so a baseline can never be checked against a
config (or code generation) it wasn't recorded for without the mismatch
being called out explicitly.

``repro verify record`` writes the baseline; ``repro verify check``
re-runs the pipeline and compares.  A divergence is reported as the
*first diverging analysis node in paper order* together with the first
diverging path inside that node's canonical tree
(``analysis.client.matching: $.fields.total_fingerprints: 903 != 904``)
— enough to bisect a regression without re-reading the whole snapshot.

Node order matters: nodes are compared in
:func:`repro.core.pipeline.analysis_stage_names` order (Section 4 before
Section 5, paper order within each side), then the derived artifacts.
Telemetry nodes listed in :data:`VOLATILE_NODES` measure the run, not
the study (engine attempt counts change under fault injection; wall
clock always changes), and are recorded but never compared.
"""

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.pipeline import analysis_stage_names, run_full_study
from repro.verify.canonical import (canonicalize, digest,
                                    first_divergence)

#: current baseline file schema version.
BASELINE_FORMAT = 1

#: nodes that are engine telemetry rather than study results: recorded
#: for the curious, excluded from equality (attempt counters legitimately
#: differ under fault injection; wall-clock always differs).
VOLATILE_NODES = frozenset({"analysis.server.probe_stats"})

#: canonical trees larger than this (serialized) are stored digest-only,
#: keeping the committed baseline reviewable; the node-level digest
#: still catches any change, only the intra-node path is then omitted.
SNAPSHOT_BYTE_LIMIT = 200_000


def run_and_snapshot(study, jobs=None, store=None):
    """Run the full pipeline once; returns ``(results, snapshots)``.

    ``results`` is :func:`repro.core.pipeline.run_full_study`'s nested
    mapping (what the invariant checker consumes); ``snapshots`` maps
    node name to canonical tree in paper order: every analysis node
    first (via the scheduler's ``node_observer``, so a store-backed run
    snapshots cached results identically), then the derived artifacts:

    - ``artifact.capture`` — the anonymized ClientHello records
      (``repro generate``'s JSONL rows);
    - ``artifact.certificates`` — the per-server summary rows
      (``repro probe``'s JSONL rows);
    - ``artifact.report`` — the rendered markdown report;
    - ``artifact.figures.<name>`` — each figure's data series.
    """
    from repro.core.figures import figure_payloads
    from repro.core.report import render_report
    observed = {}
    results = run_full_study(study, jobs=jobs, store=store,
                             node_observer=observed.__setitem__)
    snapshots = {}
    for stage in analysis_stage_names():
        snapshots[stage] = canonicalize(observed.pop(stage))
    # Any stage the registry grew that analysis_stage_names missed would
    # be a bug; keep them visible rather than dropping silently.
    for stage in sorted(observed):
        snapshots[stage] = canonicalize(observed[stage])
    snapshots["artifact.capture"] = canonicalize(
        [record.to_json() for record in study.dataset.records])
    snapshots["artifact.certificates"] = canonicalize(
        study.certificates.to_json_rows(
            ct_logs=study.network.ct_logs))
    snapshots["artifact.report"] = canonicalize(
        render_report(results, seed=study.seed))
    for name, payload in figure_payloads(study).items():
        snapshots[f"artifact.figures.{name}"] = canonicalize(payload)
    return results, snapshots


def collect_snapshots(study, jobs=None, store=None):
    """Just the ``{node name: canonical tree}`` half of a snapshot run."""
    _results, snapshots = run_and_snapshot(study, jobs=jobs, store=store)
    return snapshots


def _node_entry(tree):
    serialized = json.dumps(tree, sort_keys=True, separators=(",", ":"))
    entry = {"digest": digest(tree)}
    if len(serialized) <= SNAPSHOT_BYTE_LIMIT:
        entry["snapshot"] = tree
    else:
        entry["snapshot_bytes"] = len(serialized)
    return entry


def record_baseline(study, path, jobs=None, store=None,
                    snapshots=None):
    """Record the golden baseline for ``study``'s config at ``path``.

    Pass ``snapshots`` (from :func:`run_and_snapshot`) to reuse an
    already-executed run instead of re-running the pipeline.
    """
    from repro import __version__
    if snapshots is None:
        snapshots = collect_snapshots(study, jobs=jobs, store=store)
    payload = {
        "format": BASELINE_FORMAT,
        "artifact_digest": study.config.artifact_digest(),
        "config_digest": study.config.digest(),
        "seed": study.seed,
        "version": __version__,
        "volatile_nodes": sorted(VOLATILE_NODES),
        "nodes": {name: _node_entry(tree)
                  for name, tree in snapshots.items()},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path):
    """Parse a baseline file; raises ``ValueError`` on a bad one."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: "
                         f"{exc}") from exc
    if payload.get("format") != BASELINE_FORMAT:
        raise ValueError(
            f"baseline {path} has format {payload.get('format')!r}; "
            f"this build reads format {BASELINE_FORMAT}")
    return payload


@dataclass
class Divergence:
    """One node whose output no longer matches the baseline."""

    node: str
    detail: str
    path: str = None

    def render(self):
        location = f"{self.node}: {self.path}" if self.path else self.node
        return f"{location}: {self.detail}"


@dataclass
class CheckReport:
    """Outcome of ``repro verify check``."""

    baseline_path: str
    artifact_digest: str
    version_recorded: str
    version_running: str
    nodes_checked: int = 0
    divergences: list = field(default_factory=list)
    warnings: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.divergences

    @property
    def first_divergent_node(self):
        return self.divergences[0].node if self.divergences else None

    def render(self):
        lines = [f"baseline {self.baseline_path} "
                 f"(artifact {self.artifact_digest[:12]}, recorded at "
                 f"version {self.version_recorded})"]
        lines += [f"warning: {warning}" for warning in self.warnings]
        if self.ok:
            lines.append(f"conformance OK: {self.nodes_checked} nodes "
                         f"byte-identical to the golden baseline")
        else:
            lines.append(f"conformance FAILED: "
                         f"{len(self.divergences)} of "
                         f"{self.nodes_checked} nodes diverged; first "
                         f"divergent node: {self.first_divergent_node}")
            lines += ["  " + entry.render()
                      for entry in self.divergences]
            lines.append("re-record with 'repro verify record' if the "
                         "change is intentional")
        return "\n".join(lines)

    def to_json(self):
        return {
            "ok": self.ok,
            "baseline": self.baseline_path,
            "artifact_digest": self.artifact_digest,
            "version_recorded": self.version_recorded,
            "version_running": self.version_running,
            "nodes_checked": self.nodes_checked,
            "first_divergent_node": self.first_divergent_node,
            "divergences": [{"node": entry.node, "path": entry.path,
                             "detail": entry.detail}
                            for entry in self.divergences],
            "warnings": list(self.warnings),
        }


def check_baseline(study, path, jobs=None, store=None, snapshots=None):
    """Re-run the pipeline and compare against the baseline at ``path``.

    Pass ``snapshots`` (from :func:`run_and_snapshot`) to reuse an
    already-executed run.  Raises ``ValueError`` if the baseline cannot
    be compared at all (unreadable, wrong format, or recorded for a
    different config — a config mismatch is a usage error, not a
    divergence).
    """
    from repro import __version__
    payload = load_baseline(path)
    expected_digest = payload.get("artifact_digest", "")
    running_digest = study.config.artifact_digest()
    if expected_digest != running_digest:
        raise ValueError(
            f"baseline {path} was recorded for config artifact "
            f"{expected_digest[:12]}, but this run is "
            f"{running_digest[:12]}; record a baseline for this config "
            f"first")
    report = CheckReport(
        baseline_path=str(path),
        artifact_digest=expected_digest,
        version_recorded=payload.get("version", "?"),
        version_running=__version__)
    if report.version_recorded != report.version_running:
        report.warnings.append(
            f"baseline was recorded at version "
            f"{report.version_recorded}; running "
            f"{report.version_running} — digests are compared across "
            f"versions, re-record to refresh the key")
    volatile = set(payload.get("volatile_nodes", ())) | VOLATILE_NODES
    if snapshots is None:
        snapshots = collect_snapshots(study, jobs=jobs, store=store)
    baseline_nodes = payload.get("nodes", {})
    ordered = [name for name in snapshots if name in baseline_nodes]
    ordered += [name for name in baseline_nodes
                if name not in snapshots]
    for name in ordered:
        if name in volatile:
            continue
        report.nodes_checked += 1
        recorded = baseline_nodes.get(name)
        if recorded is None:
            report.divergences.append(Divergence(
                node=name, detail="node missing from baseline "
                "(new analysis? re-record)"))
            continue
        if name not in snapshots:
            report.divergences.append(Divergence(
                node=name, detail="node no longer produced by the "
                "pipeline"))
            continue
        tree = snapshots[name]
        if digest(tree) == recorded.get("digest"):
            continue
        entry = Divergence(node=name, detail="output digest changed")
        if "snapshot" in recorded:
            found = first_divergence(recorded["snapshot"], tree)
            if found is not None:
                entry.path, entry.detail = found
        report.divergences.append(entry)
    return report
