"""The certificate authority ecosystem.

Builds the 33 issuer organizations of the study (Section 5.2): 16 public
trust CAs whose roots live in the Mozilla/Apple/Microsoft stores, 16
private vendor CAs (footnote 5) plus Netflix — which is special: besides a
fully private root ("Netflix Primary Certificate Authority", 8,150-day
leafs) it operates "Netflix Public SHA2 RSA CA 3", an intermediate chained
under the public VeriSign root that issues 30–396-day leafs *never logged
in CT* (Table 9, Section 5.4).
"""

from repro.inspector.stacks import stable_rng
from repro.inspector.timeline import WORLD_EPOCH, days
from repro.x509.ca import CertificateAuthority, IssuancePolicy
from repro.x509.certificate import sign_certificate
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName
from repro.x509.truststore import major_stores

#: Public trust CA organizations: (name, leaf validity days, intermediates).
PUBLIC_CAS = (
    ("DigiCert", 397, ("DigiCert TLS RSA SHA256 2020 CA1",)),
    ("Let's Encrypt", 90, ("R3",)),
    ("Amazon", 395, ("Amazon RSA 2048 M01",)),
    ("Google Trust Services", 90, ("GTS CA 1C3",)),
    ("Microsoft Corporation", 397, ("Microsoft Azure TLS Issuing CA 01",)),
    ("Apple", 365, ("Apple Public EV Server RSA CA 1",)),
    ("Sectigo", 365, ("Sectigo RSA Domain Validation CA",)),
    ("COMODO", 730, ("COMODO RSA Domain Validation CA",)),
    ("GoDaddy", 397, ("Go Daddy Secure CA - G2",)),
    ("GlobalSign", 397, ("GlobalSign RSA OV SSL CA 2018",)),
    ("Entrust", 365, ("Entrust Certification Authority - L1K",)),
    ("Gandi", 730, ("Gandi Standard SSL CA 2",)),
    ("VeriSign", 730, ("VeriSign Class 3 Public Primary CA - G5",)),
    ("Starfield", 397, ("Starfield Secure CA - G2",)),
    ("Certum", 397, ("Certum Domain Validation CA SHA2",)),
    ("Actalis", 397, ("Actalis Organization Validated Server CA G3",)),
)

#: Private CA organizations: (name, default leaf validity, intermediates).
#: Intermediate counts reproduce the chain lengths of Tables 7 and 14
#: (e.g. Canary presents 4-certificate chains; Nintendo signs from the
#: root, so with-root chains have length 2).
PRIVATE_CAS = (
    ("Roku", 5000, ("Roku Trust Services CA",)),
    ("Samsung Electronics", 10950, ("Samsung TLS CA", "Samsung Device CA")),
    ("Nintendo", 9300, ()),
    ("Sony Computer Entertainment", 3650, ()),
    ("Tesla Motor Services", 3650, ("Tesla Issuing CA",)),
    ("Nest Labs", 7300, ("Nest Services CA",)),
    ("Sense Labs", 3650, ("Sense Cloud CA",)),
    ("ATT Mobility and Entertainment", 7300,
     ("ATT Video CA", "ATT Device CA")),
    ("LG Electronics", 3650, ()),
    ("Canary Connect", 7240, ("Canary Intermediate 1", "Canary Intermediate 2")),
    ("Philips", 7300, ("Philips Hue CA",)),
    ("Obihai Technology", 7300, ()),
    ("EchoStar", 24855, ()),
    ("Tuya", 36500, ()),
    ("ecobee", 7300, ("ecobee Services CA",)),
    ("Universal Electronics", 21946, ()),
    ("Netflix", 8150, ("Netflix Intermediate CA",)),
)

#: The chained-to-public Netflix issuer (counted under the Netflix org).
NETFLIX_PUBLIC_CHAINED = "Netflix Public SHA2 RSA CA 3"


class ChainedPrivateIssuer:
    """A privately-operated intermediate under a public trust root.

    Mirrors :class:`~repro.x509.ca.CertificateAuthority`'s issuing surface
    (``issue_leaf`` / ``chain_for`` / ``signing_subject``) so the network
    builder can treat it uniformly.  Chains built from it validate against
    the public root, but the operator never logs to CT.
    """

    def __init__(self, common_name, organization, parent, *, now, rng=None,
                 key_bits=512, validity_days=3650):
        self.name = organization
        self.is_public_trust = False
        self.policy = IssuancePolicy(validity_days=validity_days,
                                     logs_to_ct=False)
        self._parent = parent
        self._key = generate_keypair(key_bits, rng=rng)
        self._serial = stable_rng("chained", common_name).getrandbits(40)
        subject = DistinguishedName(common_name=common_name,
                                    organization=organization)
        self.intermediate = sign_certificate(
            serial=self._serial, subject=subject,
            issuer=parent.root.subject, issuer_keypair=parent._root_key,
            not_before=now, not_after=now + days(5475),
            public_key=self._key.public, is_ca=True)

    @property
    def signing_subject(self):
        return self.intermediate.subject

    def issue_leaf(self, common_name, *, now, san_dns_names=None,
                   validity_days=None, subject_key=None,
                   subject_organization=None, omit_names=False, ct_logs=None):
        validity = validity_days or self.policy.validity_days
        key = subject_key or generate_keypair(512)
        if omit_names:
            san_dns_names = ()
        san = tuple(san_dns_names) if san_dns_names is not None \
            else (common_name,)
        if omit_names:
            common_name, san = "misissued.invalid", ()
        self._serial += 1
        subject = DistinguishedName(common_name=common_name,
                                    organization=subject_organization)
        cert = sign_certificate(
            serial=self._serial, subject=subject,
            issuer=self.signing_subject, issuer_keypair=self._key,
            not_before=now, not_after=now + days(validity),
            public_key=key.public, san_dns_names=san, is_ca=False)
        # logs_to_ct is False: the operator never submits, even though the
        # chain is publicly valid (Section 5.4's central observation).
        return cert, key

    def chain_for(self, leaf, include_root=False):
        chain = [leaf, self.intermediate]
        if include_root:
            chain.append(self._parent.root)
        return chain


class AuthorityEcosystem:
    """All CAs, the major trust stores, and the CT logs of the world."""

    def __init__(self, seed=2023, now=WORLD_EPOCH):
        self.now = now
        self.public = {}
        self.private = {}
        for name, validity, intermediates in PUBLIC_CAS:
            rng = stable_rng(seed, "ca", name)
            self.public[name] = CertificateAuthority(
                name, is_public_trust=True,
                policy=IssuancePolicy(validity_days=validity,
                                      logs_to_ct=True),
                rng=rng, now=now, root_validity_days=9125,
                intermediate_names=intermediates)
        for name, validity, intermediates in PRIVATE_CAS:
            rng = stable_rng(seed, "ca", name)
            self.private[name] = CertificateAuthority(
                name, is_public_trust=False,
                policy=IssuancePolicy(validity_days=validity,
                                      logs_to_ct=False),
                rng=rng, now=now, root_validity_days=40000,
                intermediate_names=intermediates)
        self.netflix_chained = ChainedPrivateIssuer(
            NETFLIX_PUBLIC_CHAINED, "Netflix", self.public["VeriSign"],
            now=now, rng=stable_rng(seed, "ca", "netflix-chained"),
            validity_days=33)
        mozilla, apple, microsoft = major_stores(self.public.values())
        self.stores = {"mozilla": mozilla, "apple": apple,
                       "microsoft": microsoft}
        self.union_store = mozilla.union(apple, microsoft)

    # -- lookups -----------------------------------------------------------------

    def issuer(self, name):
        """Resolve an issuer org name to its CA object."""
        if name == NETFLIX_PUBLIC_CHAINED:
            return self.netflix_chained
        if name in self.public:
            return self.public[name]
        if name in self.private:
            return self.private[name]
        raise KeyError(f"unknown issuer organization: {name!r}")

    def is_public_trust(self, org_name):
        """CCADB-style categorization of an issuer organization."""
        return org_name in self.public

    def aia_resolver(self):
        """An AIA-chasing resolver over every intermediate in the world.

        Models what a browser does with the Authority Information Access
        extension: given a certificate whose issuer is missing from the
        presented chain, fetch the issuing intermediate.  Roots are never
        served over AIA.
        """
        by_subject = {}
        for ca in list(self.public.values()) + list(self.private.values()):
            for intermediate in ca.intermediates:
                by_subject[str(intermediate.subject)] = intermediate
        by_subject[str(self.netflix_chained.intermediate.subject)] =             self.netflix_chained.intermediate

        def resolve(certificate):
            return by_subject.get(str(certificate.issuer))

        return resolve

    def issuer_organizations(self):
        """All 33 issuer org names (Netflix's chained CA folds into
        the Netflix org, matching the paper's issuer attribution)."""
        return sorted(set(self.public) | set(self.private))
