"""The simulated Internet: SNI → TLS endpoint with real certificates.

Materializes the world's :class:`~repro.inspector.generator.ServerSpec`
records into endpoints: every server gets a real certificate chain issued
by its CA (public or private), including all the paper's misconfiguration
behaviours — omitted roots and intermediates, bare-leaf chains, expired
and self-signed certificates, CN/SAN mismatches, certificate sharing
across FQDNs and IPs, per-geography CDN variants, and CT logging (or the
deliberate absence of it).

Connections run the real handshake from :mod:`repro.tlslib.handshake`:
the prober's ClientHello bytes are parsed by a :class:`TLSServer`, which
answers with ServerHello + Certificate records carrying DER blobs.
"""

from dataclasses import dataclass, field

from repro.inspector.generator import ServerSpec
from repro.inspector.stacks import stable_rng
from repro.inspector.timeline import (
    PROBE_TIME,
    WORLD_EPOCH,
    days,
    parse_date,
)
from repro.probing.authorities import AuthorityEcosystem
from repro.tlslib.alerts import Alert, AlertDescription
from repro.tlslib.ciphersuites import codes_by_names
from repro.tlslib.errors import TLSHandshakeError
from repro.tlslib.handshake import ServerConfig, TLSServer
from repro.tlslib.versions import TLSVersion
from repro.x509.certificate import sign_certificate
from repro.x509.ct import CTLogSet
from repro.x509.keys import KeyPool
from repro.x509.revocation import RevocationAuthority
from repro.x509.names import DistinguishedName

#: Servers that died between capture and the April 2022 probe stop
#: answering after this instant.
UNREACHABLE_AFTER = parse_date("2021-01-01")

#: Geographic regions with potentially distinct CDN certificates.
REGIONS = ("us", "eu", "asia")

#: Broad server-side suite support (servers accept what clients offer).
_SERVER_SUITES = tuple(codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA384",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_DHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_DHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_DHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA256",
    "TLS_RSA_WITH_AES_128_CBC_SHA256",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
    "TLS_RSA_WITH_RC4_128_SHA",
]))

_SERVER_VERSIONS = frozenset({TLSVersion.TLS_1_0, TLSVersion.TLS_1_1,
                              TLSVersion.TLS_1_2})


class UnreachableError(ConnectionError):
    """Raised when a probed host no longer answers."""


@dataclass
class Endpoint:
    """One resolved server: its spec, per-region chains, and IPs."""

    spec: ServerSpec
    ips: tuple
    #: region → list of Certificate (leaf first) actually *presented*.
    chains: dict = field(default_factory=dict)
    #: region → leaf Certificate.
    leaves: dict = field(default_factory=dict)

    @property
    def fqdn(self):
        return self.spec.fqdn

    def leaf(self, region="us"):
        return self.leaves[region]

    def chain(self, region="us"):
        return list(self.chains[region])


class SimulatedNetwork:
    """All endpoints of the world, with a handshake-level ``connect``."""

    def __init__(self, world, ecosystem=None, seed=None, config=None):
        if config is not None and seed is None:
            seed = config.seed
        self.config = config
        self.seed = world.seed if seed is None else seed
        self.world = world
        self.ecosystem = ecosystem or AuthorityEcosystem(seed=self.seed)
        self.ct_logs = CTLogSet()
        self._key_pool = KeyPool()
        self.endpoints = {}
        self._historical_cache = {}
        self._revocation = {}
        self._build()

    # --- construction --------------------------------------------------------------

    def _build(self):
        shared_certs = {}     # share id → (leaf, chain kind ingredients)
        shared_ip_pools = {}  # share id → tuple of IPs
        rng = stable_rng(self.seed, "network")
        for spec in self.world.servers:
            ips = self._assign_ips(spec, shared_ip_pools, rng)
            chains, leaves = {}, {}
            for region in REGIONS:
                leaf, presented = self._materialize(spec, region,
                                                    shared_certs)
                chains[region] = presented
                leaves[region] = leaf
            self.endpoints[spec.fqdn] = Endpoint(spec=spec, ips=ips,
                                                 chains=chains,
                                                 leaves=leaves)

    def _assign_ips(self, spec, shared_pools, rng):
        if spec.share:
            pool = shared_pools.get(spec.share)
            if pool is None:
                pool_size = min(93, max(spec.ip_count * 3, 2))
                pool = tuple(self._make_ip(spec.share, i)
                             for i in range(pool_size))
                shared_pools[spec.share] = pool
            count = min(len(pool), max(1, spec.ip_count))
            start = rng.randrange(len(pool))
            return tuple(pool[(start + i) % len(pool)] for i in range(count))
        return tuple(self._make_ip(spec.fqdn, i)
                     for i in range(max(1, spec.ip_count)))

    @staticmethod
    def _make_ip(scope, index):
        rng = stable_rng("ip", scope, index)
        return (f"{rng.randint(11, 223)}.{rng.randint(0, 255)}"
                f".{rng.randint(0, 255)}.{rng.randint(1, 254)}")

    def _materialize(self, spec, region, shared_certs):
        """Issue (or reuse) the certificate chain one endpoint presents."""
        effective_region = region if spec.geo_variant else "us"
        if spec.share:
            key = (spec.share, effective_region)
            if key not in shared_certs:
                shared_certs[key] = self._issue(spec, effective_region,
                                                shared=True)
            leaf, presented = shared_certs[key]
            return leaf, presented
        return self._issue(spec, effective_region, shared=False)

    def _issue(self, spec, region, *, shared):
        """Issue the leaf and assemble the *presented* chain for a spec."""
        rng = stable_rng(self.seed, "issue", spec.share or spec.fqdn, region)
        if spec.chain == "self_signed":
            leaf = self._self_signed(spec, rng)
            return leaf, [leaf]
        issuer = self.ecosystem.issuer(spec.issuer)
        validity = spec.validity_days or issuer.policy.validity_days
        not_before, not_after_override = self._validity_window(
            spec, issuer, validity, rng)
        names = self._subject_names(spec, shared)
        ct_logs = None
        if getattr(issuer, "is_public_trust", False) \
                and issuer.policy.logs_to_ct and not spec.ct_absent:
            ct_logs = self.ct_logs
        leaf, _key = issuer.issue_leaf(
            names[0], now=not_before, san_dns_names=tuple(names),
            validity_days=validity, omit_names=spec.cn_mismatch,
            subject_organization=spec.owner, ct_logs=ct_logs,
            subject_key=self._key_pool.take())
        presented = self._presented_chain(spec, issuer, leaf)
        return leaf, presented

    def _validity_window(self, spec, issuer, validity, rng):
        if spec.expired_not_after:
            not_after = parse_date(spec.expired_not_after)
            return not_after - days(validity), not_after
        if validity >= 3000:
            # Long-lived private certificates installed once, never rotated
            # (Figure 6): issued around world creation.
            return WORLD_EPOCH + days(rng.randint(0, 400)), None
        # Publicly-issued certs rotate; the probed one is mid-lifetime.
        age = days(int(validity * rng.uniform(0.2, 0.8)))
        return PROBE_TIME - age, None

    def _subject_names(self, spec, shared):
        if spec.share and spec.share.startswith("wildcard:"):
            sld = spec.share.split(":", 1)[1]
            return [f"*.{sld}", sld]
        if spec.share:
            members = sorted(s.fqdn for s in self.world.servers
                             if s.share == spec.share)
            return members
        return [spec.fqdn]

    def _self_signed(self, spec, rng):
        key = self._key_pool.take()
        subject = DistinguishedName(
            common_name=f"*.{spec.sld}", organization=spec.issuer)
        validity = spec.validity_days or 3650
        not_before = WORLD_EPOCH + days(rng.randint(0, 400))
        return sign_certificate(
            serial=rng.getrandbits(40), subject=subject, issuer=subject,
            issuer_keypair=key, not_before=not_before,
            not_after=not_before + days(validity),
            public_key=key.public,
            san_dns_names=() if spec.cn_mismatch else (f"*.{spec.sld}",))

    @staticmethod
    def _presented_chain(spec, issuer, leaf):
        """Assemble what the server sends, per the spec's chain kind."""
        if spec.chain == "leaf_only":
            return [leaf]
        if spec.chain == "duplicate_leaf":
            return [leaf, leaf]
        if spec.chain == "with_root":
            return issuer.chain_for(leaf, include_root=True)
        if spec.chain == "no_intermediate":
            full = issuer.chain_for(leaf, include_root=True)
            return [full[0]] + full[2:] if len(full) > 2 else [full[0]]
        # "ok": leaf + intermediates, root omitted (RFC 5246 norm).
        return issuer.chain_for(leaf, include_root=False)

    # --- runtime --------------------------------------------------------------------

    def endpoint(self, fqdn):
        return self.endpoints[fqdn]

    def reachable(self, fqdn, at=PROBE_TIME):
        endpoint = self.endpoints.get(fqdn)
        if endpoint is None:
            return False
        return not (endpoint.spec.unreachable and at >= UNREACHABLE_AFTER)

    def chain_at(self, fqdn, region="us", at=PROBE_TIME):
        """The chain presented at time ``at`` (historical reissue aware).

        Short-lived public certificates rotate; when the requested instant
        predates the current certificate, a historical predecessor with
        identical issuer and validity length is issued deterministically —
        which is exactly why the lab dataset cross-check (Appendix C.4.2)
        finds consistent issuers despite the time gap.
        """
        endpoint = self.endpoints[fqdn]
        spec = endpoint.spec
        effective_region = region if spec.geo_variant else "us"
        chain = endpoint.chains[effective_region]
        leaf = chain[0] if chain else None
        if leaf is None or spec.expired_not_after or leaf.is_time_valid(at):
            return list(chain)
        validity_seconds = max(1, int(leaf.not_after - leaf.not_before))
        era = (at - leaf.not_before) // validity_seconds
        cache_key = (fqdn, effective_region, era)
        if cache_key not in self._historical_cache:
            issuer = self.ecosystem.issuer(spec.issuer)
            not_before = leaf.not_before + era * validity_seconds
            historical, _key = issuer.issue_leaf(
                leaf.subject.common_name, now=not_before,
                san_dns_names=leaf.san_dns_names,
                validity_days=validity_seconds / 86400,
                omit_names=spec.cn_mismatch,
                subject_organization=spec.owner,
                subject_key=self._key_pool.take(),
                ct_logs=self.ct_logs if getattr(
                    issuer, "is_public_trust", False)
                and issuer.policy.logs_to_ct and not spec.ct_absent
                else None)
            self._historical_cache[cache_key] = \
                [historical] + list(chain[1:])
        return list(self._historical_cache[cache_key])

    def revocation_authority(self, issuer_org):
        """Lazily-built revocation authority for one issuer organization."""
        if issuer_org not in self._revocation:
            self._revocation[issuer_org] = RevocationAuthority(
                self.ecosystem.issuer(issuer_org))
        return self._revocation[issuer_org]

    def server_staples(self, fqdn):
        """Whether this endpoint staples OCSP (RFC 6066).

        Stapling is a server-operator choice; a deterministic minority of
        public-CA endpoints enable it (real-world adoption is partial),
        and the private vendor CAs run no OCSP responder at all — the
        revocation gap the paper's Section 5.3 warns about.
        """
        spec = self.endpoints[fqdn].spec
        if spec.issuer not in self.ecosystem.public:
            return False
        return stable_rng(self.seed, "staple", fqdn).random() < 0.35

    def _staple_for(self, fqdn, region, at):
        endpoint = self.endpoints[fqdn]
        effective_region = region if endpoint.spec.geo_variant else "us"
        leaf = endpoint.leaves[effective_region]
        authority = self.revocation_authority(endpoint.spec.issuer)
        authority.register(leaf)
        return authority.ocsp_response(leaf, at=at).to_bytes()

    def connect(self, fqdn, client_hello_bytes, region="us", at=PROBE_TIME):
        """Handshake with a host; returns the server flight's wire bytes.

        Raises :class:`UnreachableError` for dead hosts and propagates
        :class:`~repro.tlslib.errors.TLSHandshakeError` on negotiation
        failures, as a live probe would observe.
        """
        if not self.reachable(fqdn, at=at):
            raise UnreachableError(f"{fqdn} does not answer")
        chain = self.chain_at(fqdn, region=region, at=at)
        der_chain = [certificate.to_der() for certificate in chain]
        staple_provider = None
        if self.server_staples(fqdn):
            staple_provider = lambda _sni: self._staple_for(fqdn, region, at)
        server = TLSServer(ServerConfig(
            supported_versions=_SERVER_VERSIONS,
            supported_suites=_SERVER_SUITES,
            chain_provider=lambda _sni: der_chain,
            staple_provider=staple_provider))
        try:
            return server.handle(client_hello_bytes)
        except TLSHandshakeError as exc:
            # Real servers answer failed negotiations with an alert record.
            description = AlertDescription.from_snake_name(exc.alert)
            return Alert.fatal(description).to_record_bytes(
                TLSVersion.TLS_1_0)
