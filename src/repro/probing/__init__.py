"""Server measurement substrate.

Builds the server side of the world — a CA ecosystem
(:mod:`repro.probing.authorities`), a simulated Internet of TLS endpoints
with real certificate issuance (:mod:`repro.probing.network`) — and probes
it the way the paper does: TLS connections to every SNI from three global
vantage points (:mod:`repro.probing.prober`), captured into a
:class:`~repro.probing.certdataset.CertificateDataset`.
"""

from repro.probing.authorities import AuthorityEcosystem
from repro.probing.engine import (
    FaultInjector,
    LatencyModel,
    ProbeEngine,
    ProbeStats,
    RetryPolicy,
)
from repro.probing.network import SimulatedNetwork
from repro.probing.prober import Prober, ProbeResult
from repro.probing.certdataset import CertificateDataset
from repro.probing.vantage import VANTAGE_POINTS, VantagePoint

__all__ = [
    "AuthorityEcosystem",
    "SimulatedNetwork",
    "Prober",
    "ProbeResult",
    "ProbeEngine",
    "ProbeStats",
    "RetryPolicy",
    "FaultInjector",
    "LatencyModel",
    "CertificateDataset",
    "VANTAGE_POINTS",
    "VantagePoint",
]
