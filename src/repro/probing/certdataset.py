"""The server certificate dataset (paper Section 5.1, Table 6).

Wraps the probe results with the joins the server-side analyses need:
distinct leaf certificates, certificate↔FQDN and certificate↔IP sharing,
issuer organizations, and per-vantage slices.
"""

import hashlib
from collections import defaultdict

from repro.probing.vantage import PRIMARY_VANTAGE


class CertificateDataset:
    """Probe results indexed for analysis.

    ``stats`` carries the :class:`~repro.probing.engine.ProbeStats` of the
    run that produced the dataset (``None`` for the serial prober).
    """

    def __init__(self, results, probed_at=None, network=None, stats=None):
        self.results = list(results)
        self.probed_at = probed_at
        self.stats = stats
        self._by_vantage = defaultdict(dict)
        for result in self.results:
            self._by_vantage[result.vantage][result.fqdn] = result

    # --- vantage slices -----------------------------------------------------------

    def vantages(self):
        return sorted(self._by_vantage)

    def results_at(self, vantage=PRIMARY_VANTAGE.name):
        """fqdn → ProbeResult for one vantage."""
        return dict(self._by_vantage[vantage])

    def result(self, fqdn, vantage=PRIMARY_VANTAGE.name):
        return self._by_vantage[vantage].get(fqdn)

    # --- headline counts (Table 6) ---------------------------------------------------

    def reachable_fqdns(self, vantage=PRIMARY_VANTAGE.name):
        return sorted(f for f, r in self._by_vantage[vantage].items()
                      if r.reachable and r.leaf is not None)

    def unreachable_fqdns(self, vantage=PRIMARY_VANTAGE.name):
        return sorted(f for f, r in self._by_vantage[vantage].items()
                      if not r.reachable)

    def leaf_certificates(self, vantage=PRIMARY_VANTAGE.name):
        """Distinct leaf certificates (by DER fingerprint)."""
        leaves = {}
        for result in self._by_vantage[vantage].values():
            if result.leaf is not None:
                leaves[result.leaf.fingerprint()] = result.leaf
        return leaves

    def issuer_organizations(self, vantage=PRIMARY_VANTAGE.name):
        """Distinct issuer organizations across leaf certificates."""
        return sorted({leaf.issuer.organization or leaf.issuer.common_name
                       for leaf in self.leaf_certificates(vantage).values()})

    # --- sharing (Section 5.1) ---------------------------------------------------------

    def fqdns_by_leaf(self, vantage=PRIMARY_VANTAGE.name):
        """leaf fingerprint → sorted FQDNs presenting that leaf."""
        sharing = defaultdict(list)
        for fqdn, result in sorted(self._by_vantage[vantage].items()):
            if result.leaf is not None:
                sharing[result.leaf.fingerprint()].append(fqdn)
        return dict(sharing)

    def ips_by_leaf(self, network, vantage=PRIMARY_VANTAGE.name):
        """leaf fingerprint → set of IPs serving that leaf."""
        sharing = defaultdict(set)
        for fqdn, result in self._by_vantage[vantage].items():
            if result.leaf is not None:
                endpoint = network.endpoints.get(fqdn)
                if endpoint is not None:
                    sharing[result.leaf.fingerprint()].update(endpoint.ips)
        return dict(sharing)

    # --- serialization / identity ----------------------------------------------------

    def to_json_rows(self, vantage=PRIMARY_VANTAGE.name, ct_logs=None):
        """Per-server summary rows for one vantage, sorted by FQDN.

        The row schema is defined once, on
        :meth:`~repro.probing.prober.ProbeResult.to_json`; this is what
        ``python -m repro probe`` writes as JSONL.
        """
        return [result.to_json(ct_logs=ct_logs)
                for _fqdn, result in
                sorted(self._by_vantage[vantage].items())]

    def fingerprint(self):
        """SHA-256 over every result's canonical bytes, in result order.

        Two datasets with equal fingerprints observed identical bytes in
        an identical order — the equality the parallel engine's
        determinism guarantee is checked against.
        """
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(result.signature_bytes())
            digest.update(b"\x1e")
        return digest.hexdigest()

    def __len__(self):
        return len(self.results)
