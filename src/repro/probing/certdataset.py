"""The server certificate dataset (paper Section 5.1, Table 6).

Wraps the probe results with the joins the server-side analyses need:
distinct leaf certificates, certificate↔FQDN and certificate↔IP sharing,
issuer organizations, and per-vantage slices.
"""

import hashlib
from collections import Counter, defaultdict

from repro.probing.vantage import PRIMARY_VANTAGE


class ProbeStatsSnapshot:
    """A frozen, picklable view of one run's probe telemetry.

    Live :class:`~repro.probing.engine.ProbeStats` is a view over metric
    instruments (which hold locks and can't be pickled), so a
    :class:`CertificateDataset` headed into the artifact store freezes its
    stats into this value type first.  It exposes the same read surface —
    the count attributes, the Counter views, ``to_json`` and ``summary``
    — so cached datasets answer ``--stats`` and ``probe_stats`` pipeline
    queries byte-identically to the run that produced them.
    """

    def __init__(self, data):
        self._data = dict(data)

    probes = property(lambda self: self._data.get("probes", 0))
    attempts = property(lambda self: self._data.get("attempts", 0))
    retries = property(lambda self: self._data.get("retries", 0))
    exhausted = property(lambda self: self._data.get("exhausted", 0))
    wall_seconds = property(
        lambda self: self._data.get("wall_seconds", 0.0))

    def _counter(self, key):
        return Counter(self._data.get(key, {}))

    outcomes = property(lambda self: self._counter("outcomes"))
    faults = property(lambda self: self._counter("faults"))
    latency_buckets = property(
        lambda self: self._counter("latency_buckets"))
    reachable_by_vantage = property(
        lambda self: self._counter("reachable_by_vantage"))
    unreachable_by_vantage = property(
        lambda self: self._counter("unreachable_by_vantage"))

    def to_json(self):
        return dict(self._data)

    def summary(self):
        """Same rendering as :meth:`ProbeStats.summary`, from the dict."""
        lines = [f"probes {self.probes}  attempts {self.attempts}  "
                 f"retries {self.retries}  exhausted {self.exhausted}  "
                 f"wall {self.wall_seconds:.2f}s"]
        if self.faults:
            lines.append("faults:   " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.faults.items())))
        lines.append("outcomes: " + "  ".join(
            f"{k}={v}" for k, v in sorted(self.outcomes.items())))
        lines.append("reachable: " + "  ".join(
            f"{v}={self.reachable_by_vantage[v]}"
            for v in sorted(self.reachable_by_vantage)))
        return "\n".join(lines)


class CertificateDataset:
    """Probe results indexed for analysis.

    ``stats`` carries the :class:`~repro.probing.engine.ProbeStats` of the
    run that produced the dataset (``None`` for the serial prober).
    """

    def __init__(self, results, probed_at=None, network=None, stats=None):
        self.results = list(results)
        self.probed_at = probed_at
        self.stats = stats
        self._by_vantage = defaultdict(dict)
        for result in self.results:
            self._by_vantage[result.vantage][result.fqdn] = result

    # --- vantage slices -----------------------------------------------------------

    def vantages(self):
        return sorted(self._by_vantage)

    def results_at(self, vantage=PRIMARY_VANTAGE.name):
        """fqdn → ProbeResult for one vantage."""
        return dict(self._by_vantage[vantage])

    def result(self, fqdn, vantage=PRIMARY_VANTAGE.name):
        return self._by_vantage[vantage].get(fqdn)

    # --- headline counts (Table 6) ---------------------------------------------------

    def reachable_fqdns(self, vantage=PRIMARY_VANTAGE.name):
        return sorted(f for f, r in self._by_vantage[vantage].items()
                      if r.reachable and r.leaf is not None)

    def unreachable_fqdns(self, vantage=PRIMARY_VANTAGE.name):
        return sorted(f for f, r in self._by_vantage[vantage].items()
                      if not r.reachable)

    def leaf_certificates(self, vantage=PRIMARY_VANTAGE.name):
        """Distinct leaf certificates (by DER fingerprint)."""
        leaves = {}
        for result in self._by_vantage[vantage].values():
            if result.leaf is not None:
                leaves[result.leaf.fingerprint()] = result.leaf
        return leaves

    def issuer_organizations(self, vantage=PRIMARY_VANTAGE.name):
        """Distinct issuer organizations across leaf certificates."""
        return sorted({leaf.issuer.organization or leaf.issuer.common_name
                       for leaf in self.leaf_certificates(vantage).values()})

    # --- sharing (Section 5.1) ---------------------------------------------------------

    def fqdns_by_leaf(self, vantage=PRIMARY_VANTAGE.name):
        """leaf fingerprint → sorted FQDNs presenting that leaf."""
        sharing = defaultdict(list)
        for fqdn, result in sorted(self._by_vantage[vantage].items()):
            if result.leaf is not None:
                sharing[result.leaf.fingerprint()].append(fqdn)
        return dict(sharing)

    def ips_by_leaf(self, network, vantage=PRIMARY_VANTAGE.name):
        """leaf fingerprint → set of IPs serving that leaf."""
        sharing = defaultdict(set)
        for fqdn, result in self._by_vantage[vantage].items():
            if result.leaf is not None:
                endpoint = network.endpoints.get(fqdn)
                if endpoint is not None:
                    sharing[result.leaf.fingerprint()].update(endpoint.ips)
        return dict(sharing)

    # --- serialization / identity ----------------------------------------------------

    def to_json_rows(self, vantage=PRIMARY_VANTAGE.name, ct_logs=None):
        """Per-server summary rows for one vantage, sorted by FQDN.

        The row schema is defined once, on
        :meth:`~repro.probing.prober.ProbeResult.to_json`; this is what
        ``python -m repro probe`` writes as JSONL.
        """
        return [result.to_json(ct_logs=ct_logs)
                for _fqdn, result in
                sorted(self._by_vantage[vantage].items())]

    def __getstate__(self):
        """Freeze live ``stats`` (lock-holding metric views) for pickling."""
        state = self.__dict__.copy()
        stats = state.get("stats")
        if stats is not None and not isinstance(stats,
                                                ProbeStatsSnapshot):
            state["stats"] = ProbeStatsSnapshot(stats.to_json())
        state["_by_vantage"] = {vantage: dict(results) for
                                vantage, results in
                                state["_by_vantage"].items()}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        by_vantage = defaultdict(dict)
        by_vantage.update(self._by_vantage)
        self._by_vantage = by_vantage

    def fingerprint(self):
        """SHA-256 over every result's canonical bytes, in result order.

        Two datasets with equal fingerprints observed identical bytes in
        an identical order — the equality the parallel engine's
        determinism guarantee is checked against.
        """
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(result.signature_bytes())
            digest.update(b"\x1e")
        return digest.hexdigest()

    def __len__(self):
        return len(self.results)
