"""The TLS prober that builds the certificate dataset.

Mirrors the paper's methodology (Section 5.1): take the SNIs extracted
from the ClientHello capture, open TLS connections to each from three
global vantage points, and record the ServerHello and certificate chain.
The prober is a real TLS client: it sends wire-encoded ClientHellos and
parses the server's flight; unreachable hosts and failed handshakes are
recorded as such.
"""

from dataclasses import dataclass, field

from repro.inspector.timeline import PROBE_TIME
from repro.probing.certdataset import CertificateDataset
from repro.probing.network import UnreachableError
from repro.probing.vantage import VANTAGE_POINTS
from repro.schema import versioned
from repro.tlslib.ciphersuites import codes_by_names
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.errors import TLSError
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.handshake import TLSClient
from repro.tlslib.versions import TLSVersion
from repro.x509.certificate import Certificate

#: The prober's own (modern, browser-like) ClientHello configuration.
_PROBE_SUITES = tuple(codes_by_names([
    "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_ECDSA_WITH_AES_256_GCM_SHA384",
    "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256",
    "TLS_ECDHE_RSA_WITH_AES_256_CBC_SHA",
    "TLS_ECDHE_RSA_WITH_AES_128_CBC_SHA",
    "TLS_RSA_WITH_AES_256_CBC_SHA",
    "TLS_RSA_WITH_AES_128_CBC_SHA",
]))

_PROBE_EXTENSIONS = (
    int(Ext.SERVER_NAME),
    int(Ext.SUPPORTED_GROUPS),
    int(Ext.EC_POINT_FORMATS),
    int(Ext.SIGNATURE_ALGORITHMS),
    int(Ext.STATUS_REQUEST),
)


@dataclass
class ProbeResult:
    """Outcome of probing one SNI from one vantage point."""

    fqdn: str
    vantage: str
    reachable: bool
    chain: list = field(default_factory=list)
    negotiated_version: TLSVersion = None
    negotiated_suite: int = None
    error: str = None
    ocsp_staple: bytes = None

    @property
    def stapled(self):
        return self.ocsp_staple is not None

    @property
    def leaf(self):
        return self.chain[0] if self.chain else None

    def to_json(self, ct_logs=None):
        """The per-server summary row (the JSONL schema of ``probe``).

        Pass the world's ``ct_logs`` to include the leaf's CT presence
        the way the paper's crt.sh lookups do.
        """
        row = versioned({"fqdn": self.fqdn, "vantage": self.vantage,
                         "reachable": self.reachable})
        if self.error is not None:
            row["error"] = self.error
        if self.leaf is None:
            return row
        leaf = self.leaf
        row.update({
            "issuer": leaf.issuer.organization or leaf.issuer.common_name,
            "validity_days": round(leaf.validity_days, 1),
            "not_after": int(leaf.not_after),
            "chain_length": len(self.chain),
            "stapled": self.stapled,
        })
        if ct_logs is not None:
            row["in_ct"] = ct_logs.query(leaf)
        return row

    def signature_bytes(self):
        """A canonical byte encoding of everything a probe observed.

        Two results with equal signature bytes carry identical chains
        (DER-exact), negotiation outcomes, staples, and errors — the
        equality the engine's determinism contract is stated in.
        """
        parts = [
            self.fqdn.encode(), self.vantage.encode(),
            b"1" if self.reachable else b"0",
            (self.error or "").encode(),
            str(-1 if self.negotiated_version is None
                else int(self.negotiated_version)).encode(),
            str(-1 if self.negotiated_suite is None
                else int(self.negotiated_suite)).encode(),
            self.ocsp_staple or b"",
        ]
        parts += [certificate.to_der() for certificate in self.chain]
        return b"\x1f".join(parts)


class Prober:
    """Probes a :class:`~repro.probing.network.SimulatedNetwork`.

    Stateless between probes: every :meth:`probe_one` builds a fresh
    :class:`~repro.tlslib.handshake.TLSClient`, so a prober instance can
    be shared only as a convenience — engine workers each construct their
    own (see :class:`repro.probing.engine.ProbeEngine`), and nothing is
    shared across vantages either way.
    """

    def __init__(self, network, vantages=VANTAGE_POINTS, config=None):
        if config is not None:
            vantages = config.vantages
        self.network = network
        self.vantages = tuple(vantages)

    def _hello(self, sni):
        return ClientHello(version=TLSVersion.TLS_1_2,
                           ciphersuites=list(_PROBE_SUITES),
                           extensions=list(_PROBE_EXTENSIONS), sni=sni)

    def probe_one(self, fqdn, vantage, at=PROBE_TIME):
        """Probe a single SNI from one vantage point."""
        hello = self._hello(fqdn)
        client = TLSClient()
        try:
            flight = self.network.connect(
                fqdn, client.first_flight(hello),
                region=vantage.region, at=at)
            result = client.read_server_flight(hello, flight)
        except UnreachableError as exc:
            return ProbeResult(fqdn=fqdn, vantage=vantage.name,
                               reachable=False, error=str(exc))
        except TLSError as exc:
            return ProbeResult(fqdn=fqdn, vantage=vantage.name,
                               reachable=True, error=str(exc))
        chain = [Certificate.from_der(der) for der in result.chain_der]
        return ProbeResult(
            fqdn=fqdn, vantage=vantage.name, reachable=True, chain=chain,
            negotiated_version=result.negotiated_version,
            negotiated_suite=result.server_hello.ciphersuite,
            ocsp_staple=result.ocsp_staple)

    def probe_all(self, snis, at=PROBE_TIME):
        """Probe every SNI from every vantage, serially.

        This is the reference path the parallel
        :class:`~repro.probing.engine.ProbeEngine` must reproduce
        byte-identically; returns a
        :class:`~repro.probing.certdataset.CertificateDataset`."""
        results = []
        for vantage in self.vantages:
            for fqdn in snis:
                results.append(self.probe_one(fqdn, vantage, at=at))
        return CertificateDataset(results, probed_at=at)
