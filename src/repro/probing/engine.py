"""Resilient parallel probe engine.

The paper's certificate dataset comes from probing 1,151 SNIs from three
vantage points (Section 5.1).  A real scanner of that shape is latency-
bound — every probe spends most of its wall-clock waiting on the network
round-trip — so production scanners fan probes across a worker pool and
retry transient failures with backoff.  :class:`ProbeEngine` reproduces
that architecture over the simulated Internet:

- **Concurrency**: ``(sni, vantage)`` jobs fan out across a thread pool
  (``jobs`` workers).  Each worker thread owns its own
  :class:`~repro.probing.prober.Prober` (and therefore its own
  ``TLSClient``); no handshake state is shared.  Results are merged back
  in the *serial* job order, so the resulting
  :class:`~repro.probing.certdataset.CertificateDataset` is byte-identical
  to what the serial prober produces for the same seed, regardless of
  worker interleaving.
- **Retries**: a frozen :class:`RetryPolicy` bounds attempts per probe
  and spaces them with exponential backoff whose jitter is drawn from a
  :func:`~repro.inspector.stacks.stable_rng` keyed on
  ``(seed, fqdn, vantage, attempt)`` — deterministic and independent of
  scheduling order.
- **Fault injection**: :class:`FaultInjector` wraps the network and
  injects seeded transient failures, connection resets, and slow
  responses, so the retry path is testable end-to-end.  Injected faults
  clear after a bounded number of attempts (transient means transient),
  which is what lets a sufficient retry budget recover the fault-free
  reachability exactly.
- **Latency**: the in-process network answers in microseconds, which
  hides the property the pool exists to exploit.  :class:`LatencyModel`
  assigns each ``(fqdn, vantage)`` a deterministic RTT; the engine
  *actually sleeps* ``rtt * time_scale`` per attempt (``time_scale=0``
  disables sleeping for tests).  Benchmarks run with a non-zero scale and
  observe the genuine serial-vs-parallel wall-clock gap of an RTT-bound
  scanner.
- **Telemetry**: a :class:`ProbeStats` aggregate (attempts, retries,
  error taxonomy, latency buckets, per-vantage reachability) rides on the
  returned dataset and surfaces through ``python -m repro probe --stats``.
  Since the ``repro.obs`` refactor it is a view over a
  :class:`~repro.obs.metrics.MetricsRegistry` (joining the shared
  registry when observability is active), ``probe_all`` runs inside a
  ``probe.all`` tracing span, and ``wall_seconds`` derives from a
  stopwatch started with that span — so partial/failed runs still report
  elapsed time.
"""

import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro import obs
from repro.inspector.stacks import stable_rng
from repro.inspector.timeline import PROBE_TIME
from repro.probing.certdataset import CertificateDataset
from repro.probing.prober import ProbeResult, Prober
from repro.probing.vantage import VANTAGE_POINTS


# --- retry policy --------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How a probe retries: attempt budget, backoff, per-attempt timeout.

    All durations are *network seconds* — the simulated clock the
    :class:`LatencyModel` and :class:`FaultInjector` speak.  The engine
    converts them to real sleeps via its ``time_scale``.
    """

    max_attempts: int = 3
    #: delay before the second attempt (doubles each retry).
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    #: fraction of the delay added as deterministic jitter.
    jitter: float = 0.5
    #: attempts whose response takes longer than this are abandoned.
    attempt_timeout: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_delay(self, attempt, rng):
        """Delay after a failed ``attempt`` (1-based), with jitter."""
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return delay * (1.0 + self.jitter * rng.random())


# --- fault taxonomy ------------------------------------------------------------------


class InjectedFault(ConnectionError):
    """A retryable failure injected below the TLS layer.

    Deliberately *not* an :class:`~repro.probing.network.UnreachableError`
    subclass: the prober records unreachable hosts as final results, while
    injected faults propagate to the engine's retry loop.
    """

    category = "fault"


class TransientFailure(InjectedFault):
    """The connection attempt failed but the host is alive."""

    category = "transient"


class InjectedReset(InjectedFault):
    """The peer reset the connection mid-handshake."""

    category = "reset"


class SlowResponse(InjectedFault):
    """The response arrived, but slower than any sane timeout."""

    category = "timeout"

    def __init__(self, message, latency):
        super().__init__(message)
        self.latency = latency


class FaultInjector:
    """Seeded failure-injecting wrapper around a network.

    Presents the same ``connect`` interface as
    :class:`~repro.probing.network.SimulatedNetwork` and can therefore be
    handed to a :class:`~repro.probing.prober.Prober` or
    :class:`ProbeEngine` in the network's place.

    Each endpoint gets a deterministic *fault plan* — how many of its
    initial connection attempts fail, and how — drawn from
    ``stable_rng(seed, fqdn, region)``.  The plan is independent of call
    order (safe under any worker interleaving) and bounded by
    ``max_faulty_attempts``, so any retry budget strictly larger than the
    bound recovers every endpoint.  Set ``max_faulty_attempts`` at or
    above the budget (with ``transient_rate=1.0``) to exercise budget
    exhaustion instead.
    """

    def __init__(self, network, seed=None, transient_rate=0.0,
                 reset_rate=0.0, slow_rate=0.0, max_faulty_attempts=2,
                 slow_latency=30.0):
        self.network = network
        self.seed = getattr(network, "seed", 0) if seed is None else seed
        self.transient_rate = transient_rate
        self.reset_rate = reset_rate
        self.slow_rate = slow_rate
        self.max_faulty_attempts = max_faulty_attempts
        self.slow_latency = slow_latency
        self.injected = Counter()
        self._attempts = Counter()
        self._lock = threading.Lock()

    #: attributes probers/engines read off the wrapped network.
    @property
    def endpoints(self):
        return self.network.endpoints

    def reset(self):
        """Forget attempt history (start the next run from a clean slate)."""
        with self._lock:
            self._attempts.clear()
            self.injected.clear()

    def fault_plan(self, fqdn, region):
        """The ordered fault kinds this endpoint's first attempts hit."""
        rng = stable_rng(self.seed, "fault-plan", fqdn, region)
        plan = []
        while len(plan) < self.max_faulty_attempts:
            roll = rng.random()
            if roll < self.transient_rate:
                plan.append("transient")
            elif roll < self.transient_rate + self.reset_rate:
                plan.append("reset")
            elif roll < (self.transient_rate + self.reset_rate
                         + self.slow_rate):
                plan.append("slow")
            else:
                break
        return tuple(plan)

    def connect(self, fqdn, client_hello_bytes, region="us", at=PROBE_TIME):
        with self._lock:
            self._attempts[(fqdn, region)] += 1
            attempt = self._attempts[(fqdn, region)]
        plan = self.fault_plan(fqdn, region)
        if attempt <= len(plan):
            kind = plan[attempt - 1]
            with self._lock:
                self.injected[kind] += 1
            if kind == "transient":
                raise TransientFailure(
                    f"{fqdn}: transient failure (attempt {attempt})")
            if kind == "reset":
                raise InjectedReset(
                    f"{fqdn}: connection reset (attempt {attempt})")
            latency = self.slow_latency * stable_rng(
                self.seed, "slow", fqdn, region, attempt).uniform(1.0, 3.0)
            raise SlowResponse(
                f"{fqdn}: response after {latency:.1f}s (attempt "
                f"{attempt})", latency=latency)
        return self.network.connect(fqdn, client_hello_bytes,
                                    region=region, at=at)


# --- latency model -------------------------------------------------------------------

#: Median RTT (network seconds) from each vantage region to the probed
#: hosts; Singapore sits farthest from the (mostly US-hosted) endpoints.
_BASE_RTT = {"us": 0.040, "eu": 0.070, "asia": 0.110}


@dataclass(frozen=True)
class LatencyModel:
    """Deterministic per-``(fqdn, region)`` round-trip times."""

    seed: int = 0
    #: multiplicative spread around the regional base RTT.
    spread: tuple = (0.5, 2.5)

    def rtt(self, fqdn, region):
        rng = stable_rng(self.seed, "rtt", fqdn, region)
        return _BASE_RTT.get(region, 0.080) * rng.uniform(*self.spread)


# --- telemetry -----------------------------------------------------------------------

#: (upper bound in network seconds, label) — cumulative-style buckets.
_LATENCY_BUCKETS = ((0.010, "<10ms"), (0.050, "<50ms"), (0.100, "<100ms"),
                    (0.250, "<250ms"), (float("inf"), ">=250ms"))


class ProbeStats:
    """Aggregate telemetry of one ``probe_all`` run.

    Since the ``repro.obs`` refactor this is a thin *view* over a
    :class:`~repro.obs.metrics.MetricsRegistry` (all instruments under
    the ``probe.`` prefix), so probe telemetry shows up in the shared
    metric snapshot, the run manifest, and ``repro trace-summary``
    exactly like every other stage's.  The PR-1 public surface —
    ``probes``/``attempts``/``retries``/``exhausted`` ints, ``outcomes``
    /``faults``/``latency_buckets``/``*_by_vantage`` Counters,
    ``record_attempt``/``record_result``/``to_json``/``summary`` — is
    unchanged.  Thread safety now lives in the instruments themselves.

    With no registry supplied it keeps a private one (unit tests, ad-hoc
    engines); the engine passes :func:`repro.obs.active_registry` so a
    live CLI run reports into the shared registry.
    """

    def __init__(self, registry=None):
        if registry is None:
            registry = obs.MetricsRegistry()
        self.registry = registry
        self._probes = registry.counter("probe.probes")
        self._attempts = registry.counter("probe.attempts")
        self._retries = registry.counter("probe.retries")
        self._exhausted = registry.counter("probe.exhausted")
        #: final-outcome taxonomy: ok / unreachable / tls_error /
        #: exhausted_<fault-category>.
        self._outcomes = registry.family("probe.outcomes")
        #: retryable faults encountered along the way, by category.
        self._faults = registry.family("probe.faults")
        #: simulated per-attempt RTT histogram.
        self._latency = registry.histogram("probe.latency",
                                           _LATENCY_BUCKETS)
        self._reachable = registry.family("probe.reachable_by_vantage")
        self._unreachable = registry.family(
            "probe.unreachable_by_vantage")
        self._clock = None
        self._wall_override = None

    # -- the PR-1 read surface, as registry views --

    @property
    def probes(self):
        return self._probes.value

    @property
    def attempts(self):
        return self._attempts.value

    @property
    def retries(self):
        return self._retries.value

    @property
    def exhausted(self):
        return self._exhausted.value

    @property
    def outcomes(self):
        return self._outcomes.as_counter()

    @property
    def faults(self):
        return self._faults.as_counter()

    @property
    def latency_buckets(self):
        return self._latency.counts

    @property
    def reachable_by_vantage(self):
        return self._reachable.as_counter()

    @property
    def unreachable_by_vantage(self):
        return self._unreachable.as_counter()

    def attach_clock(self, clock):
        """Derive ``wall_seconds`` from a running span/stopwatch.

        Anything with a ``duration`` attribute works; the engine passes
        the :class:`~repro.obs.tracer.Stopwatch` it starts alongside its
        ``probe.all`` span, so elapsed time is reported live — including
        for runs that die halfway (the old code only assigned
        ``wall_seconds`` at the end of a successful ``probe_all``).
        """
        self._clock = clock

    @property
    def wall_seconds(self):
        if self._wall_override is not None:
            return self._wall_override
        if self._clock is not None:
            return self._clock.duration
        return 0.0

    @wall_seconds.setter
    def wall_seconds(self, value):
        self._wall_override = value

    def record_attempt(self, rtt, fault=None):
        self._attempts.inc()
        self._latency.observe(rtt)
        if fault is not None:
            self._retries.inc()
            self._faults.inc(fault.category)

    def record_result(self, result, exhausted_category=None):
        self._probes.inc()
        if exhausted_category is not None:
            self._exhausted.inc()
            self._outcomes.inc(f"exhausted_{exhausted_category}")
        elif not result.reachable:
            self._outcomes.inc("unreachable")
        elif result.error is not None:
            self._outcomes.inc("tls_error")
        else:
            self._outcomes.inc("ok")
        if result.reachable:
            self._reachable.inc(result.vantage)
        else:
            self._unreachable.inc(result.vantage)

    def to_json(self):
        """The stats as one JSON-ready dict (schema lives here)."""
        return {
            "probes": self.probes,
            "attempts": self.attempts,
            "retries": self.retries,
            "exhausted": self.exhausted,
            "outcomes": dict(sorted(self.outcomes.items())),
            "faults": dict(sorted(self.faults.items())),
            "latency_buckets": dict(sorted(self.latency_buckets.items())),
            "reachable_by_vantage":
                dict(sorted(self.reachable_by_vantage.items())),
            "unreachable_by_vantage":
                dict(sorted(self.unreachable_by_vantage.items())),
            "wall_seconds": round(self.wall_seconds, 3),
        }

    def summary(self):
        """A compact human-readable rendering (CLI ``--stats``)."""
        lines = [f"probes {self.probes}  attempts {self.attempts}  "
                 f"retries {self.retries}  exhausted {self.exhausted}  "
                 f"wall {self.wall_seconds:.2f}s"]
        if self.faults:
            lines.append("faults:   " + "  ".join(
                f"{k}={v}" for k, v in sorted(self.faults.items())))
        lines.append("outcomes: " + "  ".join(
            f"{k}={v}" for k, v in sorted(self.outcomes.items())))
        lines.append("reachable: " + "  ".join(
            f"{v}={self.reachable_by_vantage[v]}"
            for v in sorted(self.reachable_by_vantage)))
        return "\n".join(lines)


# --- the engine ----------------------------------------------------------------------


class ProbeEngine:
    """Fans ``(sni, vantage)`` probes across a worker pool, with retries.

    Determinism contract: for a given network and seed, ``probe_all``
    returns a dataset byte-identical to the serial
    :meth:`~repro.probing.prober.Prober.probe_all` — same result order
    (vantage-major, SNI order preserved), same certificate bytes.  Worker
    count only changes wall-clock, never output.
    """

    def __init__(self, network, vantages=VANTAGE_POINTS, jobs=1,
                 retry=None, latency=None, time_scale=0.0, seed=None,
                 sleep=time.sleep):
        self.network = network
        self.vantages = tuple(vantages)
        self.jobs = max(1, int(jobs))
        self.retry = retry if retry is not None else RetryPolicy()
        self.latency = latency
        self.time_scale = time_scale
        self.seed = getattr(network, "seed", 0) if seed is None else seed
        self._sleep = sleep
        self._local = threading.local()

    def _prober(self):
        """This worker thread's private prober (own TLS client)."""
        prober = getattr(self._local, "prober", None)
        if prober is None:
            prober = Prober(self.network, self.vantages)
            self._local.prober = prober
        return prober

    def _wait(self, network_seconds):
        if self.time_scale > 0.0 and network_seconds > 0.0:
            self._sleep(network_seconds * self.time_scale)

    def _run_probe(self, fqdn, vantage, at, stats):
        """One probe job: attempt/retry until success or budget out."""
        policy = self.retry
        last_category = "transient"
        for attempt in range(1, policy.max_attempts + 1):
            rtt = (self.latency.rtt(fqdn, vantage.region)
                   if self.latency is not None else 0.0)
            fault, result = None, None
            try:
                result = self._prober().probe_one(fqdn, vantage, at=at)
            except SlowResponse as exc:
                fault, rtt = exc, min(exc.latency, policy.attempt_timeout)
            except InjectedFault as exc:
                fault = exc
            if fault is None and rtt > policy.attempt_timeout:
                # The answer exists but arrived after we hung up.
                fault = SlowResponse(f"{fqdn}: timed out", latency=rtt)
                rtt, result = policy.attempt_timeout, None
            self._wait(rtt)
            stats.record_attempt(rtt, fault)
            if fault is None:
                stats.record_result(result)
                return result
            last_category = fault.category
            if attempt < policy.max_attempts:
                jitter_rng = stable_rng(self.seed, "backoff", fqdn,
                                        vantage.name, attempt)
                self._wait(policy.backoff_delay(attempt, jitter_rng))
        result = ProbeResult(
            fqdn=fqdn, vantage=vantage.name, reachable=False,
            error=f"retry budget exhausted after {policy.max_attempts} "
                  f"attempts (last error: {last_category})")
        stats.record_result(result, exhausted_category=last_category)
        return result

    def probe_one(self, fqdn, vantage, at=PROBE_TIME, stats=None):
        """Probe one SNI from one vantage, with the full retry loop."""
        return self._run_probe(fqdn, vantage, at, stats or ProbeStats())

    def probe_all(self, snis, at=PROBE_TIME):
        """Probe every SNI from every vantage; parallel, deterministic.

        Returns a :class:`CertificateDataset` whose ``stats`` attribute
        carries the run's :class:`ProbeStats`.
        """
        jobs = [(vantage, fqdn) for vantage in self.vantages
                for fqdn in snis]
        results = [None] * len(jobs)
        stats = ProbeStats(registry=obs.active_registry())
        watch = obs.Stopwatch()
        stats.attach_clock(watch)
        with obs.span("probe.all") as span:
            span.incr("probes", len(jobs)).incr("workers", self.jobs)
            try:
                if self.jobs == 1:
                    for index, (vantage, fqdn) in enumerate(jobs):
                        results[index] = self._run_probe(fqdn, vantage,
                                                         at, stats)
                else:
                    with ThreadPoolExecutor(
                            max_workers=self.jobs,
                            thread_name_prefix="probe") as pool:
                        futures = {
                            pool.submit(self._run_probe, fqdn, vantage,
                                        at, stats): index
                            for index, (vantage, fqdn) in enumerate(jobs)}
                        for future in futures:
                            results[futures[future]] = future.result()
            finally:
                watch.stop()
        return CertificateDataset(results, probed_at=at, stats=stats)
