"""Probing vantage points.

The paper probes every SNI from New York (US), Frankfurt (Europe), and
Singapore (Asia) and cross-checks the returned certificates
(Appendix C.4.1).  CDN-backed servers may serve per-region certificates;
the rest answer identically everywhere.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VantagePoint:
    """One probing location."""

    name: str
    city: str
    region: str  # matches the per-region certificate variants


VANTAGE_POINTS = (
    VantagePoint(name="new-york", city="New York, US", region="us"),
    VantagePoint(name="frankfurt", city="Frankfurt, DE", region="eu"),
    VantagePoint(name="singapore", city="Singapore, SG", region="asia"),
)

#: The vantage the paper uses for the main analysis (Section 5.1).
PRIMARY_VANTAGE = VANTAGE_POINTS[0]
