"""Certificate authorities: public-trust and private (vendor) CAs.

Section 5.2 of the paper divides leaf-certificate issuers into *public
trust CAs* (root present in major trust stores) and *private CAs* (sign
only their own domains, root absent from trust stores).  A
:class:`CertificateAuthority` models either kind: it owns a self-signed
root, optionally a chain of intermediates, an :class:`IssuancePolicy`
(validity period, CT logging behaviour), and issues leaf certificates.
"""

import itertools
import random
from dataclasses import dataclass

from repro.x509.certificate import sign_certificate
from repro.x509.errors import IssuanceError
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName

_SECONDS_PER_DAY = 86400


@dataclass(frozen=True)
class IssuancePolicy:
    """How a CA issues leaf certificates.

    Attributes:
        validity_days: leaf validity period.  Public CAs in the study stay
            under ~1,000 days; private vendor CAs range up to 36,500 days
            (Tuya) — the paper's central server-side finding.
        logs_to_ct: whether issued leafs are submitted to CT.  Enforced for
            public CAs by browser CT policies; never done by the private
            CAs in the study.
        include_san: whether the SAN extension is populated (the
            ``a2.tuyaus.com`` mismatch comes from a vendor CA omitting the
            host from both CN and SAN).
    """

    validity_days: float = 398
    logs_to_ct: bool = True
    include_san: bool = True


class CertificateAuthority:
    """A CA with a self-signed root, optional intermediates, and a policy."""

    def __init__(self, name, *, is_public_trust, policy=None, rng=None,
                 key_bits=512, root_validity_days=7300, country="US",
                 intermediate_names=(), now=0):
        self.name = name
        self.is_public_trust = is_public_trust
        self.policy = policy or IssuancePolicy()
        self._rng = rng or random.Random()
        self._key_bits = key_bits
        self._serials = itertools.count(self._rng.getrandbits(40) or 1)
        self._root_key = generate_keypair(key_bits, rng=self._rng)
        root_subject = DistinguishedName(
            common_name=f"{name} Root CA", organization=name, country=country)
        self.root = sign_certificate(
            serial=next(self._serials), subject=root_subject,
            issuer=root_subject, issuer_keypair=self._root_key,
            not_before=now, not_after=now + root_validity_days * _SECONDS_PER_DAY,
            public_key=self._root_key.public, is_ca=True)
        # Intermediates are kept as (certificate, keypair) pairs; leafs are
        # signed by the last intermediate when any exist.
        self._intermediates = []
        for intermediate_name in intermediate_names:
            self.add_intermediate(intermediate_name, now=now,
                                  validity_days=root_validity_days)

    # --- structure ------------------------------------------------------------

    @property
    def intermediates(self):
        """Intermediate certificates, root-adjacent first."""
        return [cert for cert, _key in self._intermediates]

    @property
    def signing_key(self):
        """Keypair that signs leaf certificates."""
        if self._intermediates:
            return self._intermediates[-1][1]
        return self._root_key

    @property
    def signing_subject(self):
        """Name that appears as the issuer of leaf certificates."""
        if self._intermediates:
            return self._intermediates[-1][0].subject
        return self.root.subject

    def add_intermediate(self, common_name, *, now, validity_days=5475):
        """Create and chain a new intermediate under the current signer."""
        key = generate_keypair(self._key_bits, rng=self._rng)
        subject = DistinguishedName(common_name=common_name,
                                    organization=self.name)
        cert = sign_certificate(
            serial=next(self._serials), subject=subject,
            issuer=self.signing_subject, issuer_keypair=self.signing_key,
            not_before=now, not_after=now + validity_days * _SECONDS_PER_DAY,
            public_key=key.public, is_ca=True)
        self._intermediates.append((cert, key))
        return cert

    # --- issuance ---------------------------------------------------------------

    def issue_leaf(self, common_name, *, now, san_dns_names=None,
                   validity_days=None, subject_key=None, subject_organization=None,
                   omit_names=False, ct_logs=None):
        """Issue a leaf certificate.

        Args:
            common_name: subject CN (usually the FQDN or a wildcard).
            now: issuance time (POSIX seconds) — becomes ``not_before``.
            san_dns_names: DNS names for the SAN; defaults to ``[common_name]``
                when the policy includes SANs.
            validity_days: override the policy validity period.
            subject_key: reuse an existing keypair (certificate sharing across
                servers, Section 5.1); a fresh key is generated when omitted.
            omit_names: misissuance knob — produce a certificate whose CN/SAN
                do not include the intended host (the Tuya case).
            ct_logs: a :class:`~repro.x509.ct.CTLogSet`; when provided and
                the policy logs to CT, the leaf is submitted.

        Returns ``(certificate, keypair)``.
        """
        if validity_days is None:
            validity_days = self.policy.validity_days
        if validity_days <= 0:
            raise IssuanceError("validity period must be positive")
        key = subject_key or generate_keypair(self._key_bits, rng=self._rng)
        if omit_names:
            subject_cn, san = f"misissued.{self.name.lower().replace(' ', '-')}.invalid", ()
        else:
            subject_cn = common_name
            if san_dns_names is not None:
                san = tuple(san_dns_names)
            elif self.policy.include_san:
                san = (common_name,)
            else:
                san = ()
        subject = DistinguishedName(common_name=subject_cn,
                                    organization=subject_organization)
        cert = sign_certificate(
            serial=next(self._serials), subject=subject,
            issuer=self.signing_subject, issuer_keypair=self.signing_key,
            not_before=now,
            not_after=now + int(validity_days * _SECONDS_PER_DAY),
            public_key=key.public, san_dns_names=san, is_ca=False)
        if ct_logs is not None and self.policy.logs_to_ct:
            ct_logs.submit(cert)
        return cert, key

    def chain_for(self, leaf, include_root=False):
        """Assemble the presented chain for ``leaf`` (leaf first).

        Real servers frequently omit the root (RFC 5246 permits it); some
        misconfigured ones omit intermediates too — callers model that by
        slicing the returned list.
        """
        chain = [leaf] + list(reversed(self.intermediates))
        if include_root:
            chain.append(self.root)
        return chain

    def __repr__(self):
        kind = "public-trust" if self.is_public_trust else "private"
        return f"CertificateAuthority({self.name!r}, {kind})"
