"""Zeek-style certificate chain validation.

The paper (Section 5.3) validates every captured chain with Zeek against
the union of the Mozilla, Apple, and Microsoft trust stores, and reports a
status taxonomy that drives Tables 7, 8, 14, and 17:

- *ok* — chains to a store root, names and times check out;
- *incomplete chain* — an issuer is missing from both the presented chain
  and the stores ("unable to get local issuer certificate");
- *untrusted root* (private root CA) — the chain is complete up to a
  self-signed root that no store contains;
- *self-signed certificate* — the leaf itself is self-signed;
- *expired* / *not yet valid*;
- *bad signature* — a link fails cryptographic verification;
- plus an orthogonal *common-name mismatch* flag (the ``a2.tuyaus.com``
  case) checked against the probed SNI.
"""

import enum
from dataclasses import dataclass

from repro import obs
from repro.x509.chain import build_path


class ChainStatus(enum.Enum):
    """Primary validation status, mirroring Zeek's result strings."""

    OK = "ok"
    INCOMPLETE_CHAIN = "unable to get local issuer certificate"
    UNTRUSTED_ROOT = "untrusted root CA"
    SELF_SIGNED = "self-signed certificate"
    EXPIRED = "certificate has expired"
    NOT_YET_VALID = "certificate is not yet valid"
    BAD_SIGNATURE = "certificate signature failure"

    @property
    def is_private_issuer_status(self):
        """Statuses grouped as "private issuers" in Table 14."""
        return self in (ChainStatus.UNTRUSTED_ROOT, ChainStatus.SELF_SIGNED)


@dataclass
class ValidationReport:
    """Full outcome of validating one presented chain.

    Attributes:
        status: primary :class:`ChainStatus`.
        hostname_ok: whether the leaf's CN/SAN cover the probed host
            (None when no host was supplied).
        expired: leaf or path certificate expired at validation time.
        not_yet_valid: a path certificate is not yet valid.
        chain_complete: path terminated at a self-signed certificate or a
            store root.
        anchor_in_store: the path anchor is a trust-store member.
        presented_length: number of certificates the server presented.
        path_length: length of the built verification path.
        leaf: the leaf certificate.
    """

    status: ChainStatus
    hostname_ok: object
    expired: bool
    not_yet_valid: bool
    chain_complete: bool
    anchor_in_store: bool
    presented_length: int
    path_length: int
    leaf: object

    @property
    def valid(self):
        """True when the chain is fully acceptable (incl. host name)."""
        return self.status is ChainStatus.OK and self.hostname_ok is not False

    @property
    def cn_mismatch(self):
        return self.hostname_ok is False


class ChainValidator:
    """Validates presented chains against a (union) trust store.

    ``intermediate_resolver`` enables AIA chasing (see
    :func:`repro.x509.chain.build_path`); the paper's Zeek setup leaves
    it off.
    """

    def __init__(self, store, intermediate_resolver=None):
        self.store = store
        self.intermediate_resolver = intermediate_resolver

    def validate(self, presented, at, hostname=None):
        """Validate ``presented`` (leaf first) at time ``at``.

        Args:
            presented: list of :class:`~repro.x509.certificate.Certificate`.
            at: POSIX seconds of the validation instant (the paper uses the
                capture time, which is how long-expired certificates in
                Table 8 surface).
            hostname: the SNI used to reach the server, for CN/SAN checks.

        Returns a :class:`ValidationReport`.
        """
        if not presented:
            raise ValueError("cannot validate an empty chain")
        leaf = presented[0]
        path = build_path(presented, self.store,
                          intermediate_resolver=self.intermediate_resolver)
        expired = any(cert.is_expired(at) for cert in path.certificates)
        not_yet_valid = any(cert.is_not_yet_valid(at)
                            for cert in path.certificates)
        hostname_ok = leaf.covers_host(hostname) if hostname else None
        status = self._primary_status(leaf, path, expired, not_yet_valid)
        obs.incr("validate.status", status.value)
        if hostname_ok is False:
            obs.incr("validate.cn_mismatch")
        return ValidationReport(
            status=status,
            hostname_ok=hostname_ok,
            expired=expired,
            not_yet_valid=not_yet_valid,
            chain_complete=path.complete,
            anchor_in_store=path.anchor_in_store,
            presented_length=len(presented),
            path_length=len(path),
            leaf=leaf,
        )

    @staticmethod
    def _primary_status(leaf, path, expired, not_yet_valid):
        if path.broken_link_at is not None:
            return ChainStatus.BAD_SIGNATURE
        if leaf.is_self_signed():
            return ChainStatus.SELF_SIGNED
        if not path.complete:
            return ChainStatus.INCOMPLETE_CHAIN
        if not path.anchor_in_store:
            return ChainStatus.UNTRUSTED_ROOT
        if expired:
            return ChainStatus.EXPIRED
        if not_yet_valid:
            return ChainStatus.NOT_YET_VALID
        return ChainStatus.OK
