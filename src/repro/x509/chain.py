"""Certificate path building.

Given the chain a server *presented* (leaf first, possibly incomplete or
out of order) and a trust store, :func:`build_path` reconstructs the
verification path the way Zeek/OpenSSL do: follow issuer links by name,
confirm each link cryptographically, and terminate either at a self-signed
certificate or at a trust-store root.
"""

from dataclasses import dataclass, field


@dataclass
class Path:
    """Result of path building.

    Attributes:
        certificates: the ordered path, leaf first.  When the anchor came
            from the trust store it is appended even though the server did
            not present it.
        anchor_in_store: True when the topmost certificate is a trust-store
            member.
        complete: True when the path terminates at a self-signed
            certificate (trusted or not); False when an issuer was missing
            from both the presented chain and the store.
        broken_link_at: index of the certificate whose issuer's signature
            check failed, or None.
    """

    certificates: list = field(default_factory=list)
    anchor_in_store: bool = False
    complete: bool = False
    broken_link_at: int = None

    @property
    def leaf(self):
        return self.certificates[0]

    @property
    def anchor(self):
        return self.certificates[-1]

    def __len__(self):
        return len(self.certificates)


def _find_presented_issuer(certificate, candidates):
    """Find the presented certificate that signed ``certificate``.

    Name match is required; among name matches, a certificate whose key
    actually verifies the signature is preferred, but a name-only match is
    still returned (with ``verified=False``) so broken links are observable
    rather than reported as missing issuers.
    """
    name_matches = [c for c in candidates
                    if str(c.subject) == str(certificate.issuer)]
    for candidate in name_matches:
        if candidate.public_key.verifies(certificate.tbs_der,
                                         certificate.signature):
            return candidate, True
    if name_matches:
        return name_matches[0], False
    return None, False


def build_path(presented, store, max_depth=8, intermediate_resolver=None):
    """Build a verification path from ``presented`` certificates.

    Args:
        presented: server-presented certificates, leaf first (order of the
            rest does not matter — real servers scramble it).
        store: a :class:`~repro.x509.truststore.TrustStore` (usually the
            union of the major stores).
        max_depth: loop guard for pathological chains.
        intermediate_resolver: optional callable ``certificate -> issuer
            certificate or None`` modelling AIA chasing (fetching the
            missing intermediate from the URL in the Authority Information
            Access extension).  Zeek/OpenSSL do *not* chase AIA — which is
            why the paper's Table 7 chains fail — but browsers do; the
            ablation benchmark quantifies the difference.

    Returns a :class:`Path`.
    """
    if not presented:
        raise ValueError("cannot build a path from an empty chain")
    leaf = presented[0]
    pool = list(presented[1:])
    path = Path(certificates=[leaf])
    current = leaf
    for depth in range(max_depth):
        if current.is_self_issued:
            # Terminal certificate: path is complete; check trust and
            # self-signature integrity.
            path.complete = True
            path.anchor_in_store = store.contains(current)
            if not current.public_key.verifies(current.tbs_der,
                                               current.signature):
                path.broken_link_at = len(path.certificates) - 1
            return path
        trusted_issuer = store.find_issuer(current)
        if trusted_issuer is not None and not any(
                c.fingerprint() == trusted_issuer.fingerprint()
                for c in path.certificates):
            path.certificates.append(trusted_issuer)
            path.complete = True
            path.anchor_in_store = True
            return path
        issuer, verified = _find_presented_issuer(current, pool)
        if issuer is None and intermediate_resolver is not None:
            fetched = intermediate_resolver(current)
            if fetched is not None and fetched.public_key.verifies(
                    current.tbs_der, current.signature):
                issuer, verified = fetched, True
        if issuer is None:
            # Issuer neither presented nor in the store: incomplete chain.
            return path
        if not verified and path.broken_link_at is None:
            path.broken_link_at = len(path.certificates) - 1
        path.certificates.append(issuer)
        pool = [c for c in pool if c.fingerprint() != issuer.fingerprint()]
        current = issuer
    return path
