"""A small, real DER (ASN.1 Distinguished Encoding Rules) codec.

Supports the universal types needed by our X.509-like certificates —
INTEGER, BOOLEAN, NULL, OCTET STRING, BIT STRING, OBJECT IDENTIFIER,
UTF8String, PrintableString, UTCTime, GeneralizedTime, SEQUENCE, SET —
plus context-specific constructed tags for extensions.

Values are represented with a tiny node model (:class:`ASN1Value`) rather
than mapping onto Python types implicitly, which keeps round-trips exact
and makes malformed input raise :class:`DERDecodeError` instead of
producing surprises.
"""

from dataclasses import dataclass

from repro.x509.errors import DERDecodeError


class Tag:
    """Universal and class tag constants."""

    BOOLEAN = 0x01
    INTEGER = 0x02
    BIT_STRING = 0x03
    OCTET_STRING = 0x04
    NULL = 0x05
    OID = 0x06
    UTF8_STRING = 0x0C
    PRINTABLE_STRING = 0x13
    UTC_TIME = 0x17
    GENERALIZED_TIME = 0x18
    SEQUENCE = 0x30
    SET = 0x31

    CONSTRUCTED = 0x20
    CONTEXT = 0x80

    @staticmethod
    def context(number, constructed=True):
        """Build a context-specific tag byte ``[number]``."""
        tag = Tag.CONTEXT | number
        if constructed:
            tag |= Tag.CONSTRUCTED
        return tag


@dataclass(frozen=True)
class ASN1Value:
    """A decoded TLV node: ``tag``, raw ``content`` bytes, and, for
    constructed types, the list of ``children`` nodes."""

    tag: int
    content: bytes
    children: tuple = ()

    @property
    def is_constructed(self):
        return bool(self.tag & Tag.CONSTRUCTED)

    # -- typed accessors (raise DERDecodeError on tag mismatch) --------------

    def _expect(self, tag, kind):
        if self.tag != tag:
            raise DERDecodeError(
                f"expected {kind} (tag 0x{tag:02X}), got tag 0x{self.tag:02X}")

    def as_integer(self):
        self._expect(Tag.INTEGER, "INTEGER")
        return decode_integer_content(self.content)

    def as_boolean(self):
        self._expect(Tag.BOOLEAN, "BOOLEAN")
        if len(self.content) != 1:
            raise DERDecodeError("BOOLEAN content must be a single byte")
        return self.content != b"\x00"

    def as_octet_string(self):
        self._expect(Tag.OCTET_STRING, "OCTET STRING")
        return self.content

    def as_bit_string(self):
        self._expect(Tag.BIT_STRING, "BIT STRING")
        if not self.content or self.content[0] != 0:
            raise DERDecodeError("only byte-aligned BIT STRINGs are supported")
        return self.content[1:]

    def as_oid(self):
        self._expect(Tag.OID, "OBJECT IDENTIFIER")
        return decode_oid_content(self.content)

    def as_text(self):
        if self.tag not in (Tag.UTF8_STRING, Tag.PRINTABLE_STRING):
            raise DERDecodeError(f"tag 0x{self.tag:02X} is not a string type")
        try:
            return self.content.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DERDecodeError("invalid string payload") from exc

    def as_time(self):
        """Return POSIX seconds from a UTCTime/GeneralizedTime node."""
        import calendar
        text = self.content.decode("ascii", errors="replace")
        if self.tag == Tag.UTC_TIME:
            if len(text) != 13 or not text.endswith("Z"):
                raise DERDecodeError(f"malformed UTCTime: {text!r}")
            year = int(text[0:2])
            year += 2000 if year < 50 else 1900
            parts = text[2:12]
        elif self.tag == Tag.GENERALIZED_TIME:
            if len(text) != 15 or not text.endswith("Z"):
                raise DERDecodeError(f"malformed GeneralizedTime: {text!r}")
            year = int(text[0:4])
            parts = text[4:14]
        else:
            raise DERDecodeError(f"tag 0x{self.tag:02X} is not a time type")
        try:
            month, day = int(parts[0:2]), int(parts[2:4])
            hour, minute, second = int(parts[4:6]), int(parts[6:8]), int(parts[8:10])
            return calendar.timegm((year, month, day, hour, minute, second))
        except (ValueError, OverflowError) as exc:
            raise DERDecodeError(f"invalid time fields: {text!r}") from exc

    def __iter__(self):
        return iter(self.children)

    def __len__(self):
        return len(self.children)

    def __getitem__(self, index):
        return self.children[index]


# --- low-level encode helpers ------------------------------------------------

def encode_length(length):
    if length < 0x80:
        return bytes([length])
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def encode_tlv(tag, content):
    return bytes([tag]) + encode_length(len(content)) + content


def encode_integer(value):
    if value == 0:
        return encode_tlv(Tag.INTEGER, b"\x00")
    negative = value < 0
    magnitude = value if not negative else -value
    width = (magnitude.bit_length() + 7) // 8 + 1  # room for sign bit
    body = value.to_bytes(width, "big", signed=True)
    # DER: minimal encoding — strip redundant leading bytes.
    while len(body) > 1 and (
        (body[0] == 0x00 and body[1] < 0x80)
        or (body[0] == 0xFF and body[1] >= 0x80)
    ):
        body = body[1:]
    return encode_tlv(Tag.INTEGER, body)


def encode_boolean(value):
    return encode_tlv(Tag.BOOLEAN, b"\xff" if value else b"\x00")


def encode_null():
    return encode_tlv(Tag.NULL, b"")


def encode_octet_string(data):
    return encode_tlv(Tag.OCTET_STRING, bytes(data))


def encode_bit_string(data):
    return encode_tlv(Tag.BIT_STRING, b"\x00" + bytes(data))


def encode_oid(dotted):
    arcs = [int(part) for part in dotted.split(".")]
    if len(arcs) < 2 or arcs[0] > 2 or (arcs[0] < 2 and arcs[1] >= 40):
        raise ValueError(f"invalid OID: {dotted!r}")
    body = bytearray([arcs[0] * 40 + arcs[1]])
    for arc in arcs[2:]:
        chunk = bytearray([arc & 0x7F])
        arc >>= 7
        while arc:
            chunk.insert(0, 0x80 | (arc & 0x7F))
            arc >>= 7
        body += chunk
    return encode_tlv(Tag.OID, bytes(body))


def encode_utf8(text):
    return encode_tlv(Tag.UTF8_STRING, text.encode("utf-8"))


def encode_printable(text):
    return encode_tlv(Tag.PRINTABLE_STRING, text.encode("ascii"))


def encode_utc_time(posix_seconds):
    import time as _time
    parts = _time.gmtime(posix_seconds)
    text = _time.strftime("%y%m%d%H%M%SZ", parts)
    return encode_tlv(Tag.UTC_TIME, text.encode("ascii"))


def encode_generalized_time(posix_seconds):
    import time as _time
    parts = _time.gmtime(posix_seconds)
    text = _time.strftime("%Y%m%d%H%M%SZ", parts)
    return encode_tlv(Tag.GENERALIZED_TIME, text.encode("ascii"))


def encode_time(posix_seconds):
    """X.509 rule: UTCTime for dates before 2050, GeneralizedTime after."""
    import time as _time
    year = _time.gmtime(posix_seconds).tm_year
    if year < 2050:
        return encode_utc_time(posix_seconds)
    return encode_generalized_time(posix_seconds)


def encode_sequence(*encoded_members):
    return encode_tlv(Tag.SEQUENCE, b"".join(encoded_members))


def encode_set(*encoded_members):
    # DER requires SET OF members sorted by their encodings.
    return encode_tlv(Tag.SET, b"".join(sorted(encoded_members)))


def encode_context(number, content, constructed=True):
    return encode_tlv(Tag.context(number, constructed), content)


# --- low-level decode helpers ------------------------------------------------

def decode_integer_content(content):
    if not content:
        raise DERDecodeError("empty INTEGER content")
    if len(content) > 1 and (
        (content[0] == 0x00 and content[1] < 0x80)
        or (content[0] == 0xFF and content[1] >= 0x80)
    ):
        raise DERDecodeError("non-minimal INTEGER encoding")
    return int.from_bytes(content, "big", signed=True)


def decode_oid_content(content):
    if not content:
        raise DERDecodeError("empty OID content")
    first = content[0]
    arcs = [min(first // 40, 2), first - 40 * min(first // 40, 2)]
    value = 0
    for i, byte in enumerate(content[1:], start=1):
        value = (value << 7) | (byte & 0x7F)
        if not byte & 0x80:
            arcs.append(value)
            value = 0
        elif i == len(content) - 1:
            raise DERDecodeError("truncated OID arc")
    return ".".join(str(arc) for arc in arcs)


def _read_tlv(data, offset):
    if offset >= len(data):
        raise DERDecodeError("unexpected end of input")
    tag = data[offset]
    offset += 1
    if offset >= len(data):
        raise DERDecodeError("missing length byte")
    first = data[offset]
    offset += 1
    if first < 0x80:
        length = first
    else:
        n = first & 0x7F
        if n == 0 or n > 4:
            raise DERDecodeError("unsupported length-of-length")
        if offset + n > len(data):
            raise DERDecodeError("truncated long-form length")
        length = int.from_bytes(data[offset:offset + n], "big")
        if length < 0x80:
            raise DERDecodeError("non-minimal length encoding")
        offset += n
    if offset + length > len(data):
        raise DERDecodeError("content extends past end of input")
    return tag, data[offset:offset + length], offset + length


def decode(data):
    """Decode a single DER value (recursively), rejecting trailing bytes."""
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise DERDecodeError(f"{len(data) - end} trailing bytes after DER value")
    return value


def _decode_at(data, offset):
    tag, content, end = _read_tlv(data, offset)
    children = ()
    if tag & Tag.CONSTRUCTED:
        kids, pos = [], 0
        while pos < len(content):
            child, pos = _decode_at(content, pos)
            kids.append(child)
        children = tuple(kids)
    return ASN1Value(tag=tag, content=content, children=children), end


def decode_all(data):
    """Decode a concatenation of DER values into a list."""
    values, offset = [], 0
    while offset < len(data):
        value, offset = _decode_at(data, offset)
        values.append(value)
    return values
