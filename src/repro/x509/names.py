"""Distinguished names and RFC 6125-style host-name matching.

The paper's "Common Name mismatch" finding (Section 5.3, the
``a2.tuyaus.com`` case) depends on correct host matching against the
subject CN and the SAN extension, including wildcard semantics.
"""

from dataclasses import dataclass

from repro.x509 import asn1

#: OIDs for the DN attributes we emit.
OID_COMMON_NAME = "2.5.4.3"
OID_ORGANIZATION = "2.5.4.10"
OID_COUNTRY = "2.5.4.6"

_ATTRIBUTE_ORDER = (
    (OID_COUNTRY, "country"),
    (OID_ORGANIZATION, "organization"),
    (OID_COMMON_NAME, "common_name"),
)


@dataclass(frozen=True)
class DistinguishedName:
    """An X.500 name reduced to the attributes the analysis consumes."""

    common_name: str
    organization: str = None
    country: str = None

    def to_der(self):
        """Encode as an RDNSequence."""
        rdns = []
        for oid, attr in _ATTRIBUTE_ORDER:
            value = getattr(self, attr)
            if value is None:
                continue
            attribute = asn1.encode_sequence(
                asn1.encode_oid(oid), asn1.encode_utf8(value))
            rdns.append(asn1.encode_set(attribute))
        return asn1.encode_sequence(*rdns)

    @classmethod
    def from_asn1(cls, node):
        """Decode from a parsed RDNSequence node."""
        values = {}
        for rdn in node:
            for attribute in rdn:
                oid = attribute[0].as_oid()
                text = attribute[1].as_text()
                for known_oid, attr in _ATTRIBUTE_ORDER:
                    if oid == known_oid:
                        values[attr] = text
        if "common_name" not in values:
            raise ValueError("distinguished name lacks a common name")
        return cls(**values)

    def __str__(self):
        parts = []
        if self.country:
            parts.append(f"C={self.country}")
        if self.organization:
            parts.append(f"O={self.organization}")
        parts.append(f"CN={self.common_name}")
        return ", ".join(parts)


def _is_valid_label(label):
    return bool(label) and all(c.isalnum() or c in "-_" for c in label)


def hostname_matches(pattern, hostname):
    """RFC 6125-style match of ``hostname`` against a certificate ``pattern``.

    Rules implemented:
    - comparison is case-insensitive on ASCII letters;
    - a wildcard may appear only as the complete leftmost label
      (``*.example.com``); partial wildcards (``f*.example.com``) are
      rejected, as modern validators do;
    - the wildcard matches exactly one label (``*.example.com`` does not
      match ``a.b.example.com`` nor the bare ``example.com``);
    - wildcards never match across a public-suffix-like boundary: the
      pattern must retain at least two literal labels.
    """
    if not pattern or not hostname:
        return False
    pattern = pattern.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if "*" not in pattern:
        return pattern == hostname
    pattern_labels = pattern.split(".")
    host_labels = hostname.split(".")
    if pattern_labels[0] != "*":
        return False  # partial-label wildcards rejected
    if "*" in "".join(pattern_labels[1:]):
        return False  # wildcard allowed only in the leftmost label
    if len(pattern_labels) < 3:
        return False  # e.g. "*.com" — too broad
    if len(host_labels) != len(pattern_labels):
        return False
    if not _is_valid_label(host_labels[0]):
        return False
    return host_labels[1:] == pattern_labels[1:]


def certificate_covers_host(common_name, san_dns_names, hostname):
    """Decide whether a certificate's names cover ``hostname``.

    Mirrors common validator behaviour: when a SAN extension with DNS names
    is present it is authoritative and the CN is ignored; otherwise the CN
    is consulted as a fallback.
    """
    if san_dns_names:
        return any(hostname_matches(name, hostname) for name in san_dns_names)
    if common_name:
        return hostname_matches(common_name, hostname)
    return False


def second_level_domain(fqdn):
    """Return the registrable second-level domain of ``fqdn``.

    Uses a small embedded list of multi-part public suffixes sufficient for
    the domains in the study (e.g. ``co.kr`` for ``pavv.co.kr``).
    """
    labels = fqdn.lower().rstrip(".").split(".")
    if len(labels) < 2:
        return fqdn.lower()
    two_part_suffixes = {"co.kr", "co.uk", "co.jp", "com.cn", "com.au", "org.uk"}
    suffix = ".".join(labels[-2:])
    if suffix in two_part_suffixes and len(labels) >= 3:
        return ".".join(labels[-3:])
    return suffix
