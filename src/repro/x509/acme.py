"""A miniature ACME (RFC 8555) implementation.

Section 5.4's recommendation: *"We urge the private CAs (e.g., device
vendors) to adopt an automation framework such as ACME to facilitate
certificate management."*  This module makes that recommendation
executable so the ablation benchmark can measure its effect: vendor
servers enrolled with an :class:`ACMEClient` against an
:class:`ACMEServer` get short-lived, CT-logged certificates with
automatic renewal — collapsing the paper's 36,500-day validity tail.

The protocol core is real: account registration, order creation,
HTTP-01-style challenges with key-authorization tokens, challenge
validation against a simulated ``.well-known`` store, CSR finalization,
and renewal scheduling.  Only the JOSE envelope is elided (requests are
authenticated by account key signatures over the payload).
"""

import enum
import hashlib
from dataclasses import dataclass, field

from repro.x509.errors import X509Error
from repro.x509.keys import generate_keypair


class OrderStatus(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    VALID = "valid"
    INVALID = "invalid"


class ACMEError(X509Error):
    """Protocol violation or failed validation."""


@dataclass
class Challenge:
    """An HTTP-01 style challenge for one identifier."""

    identifier: str
    token: str
    validated: bool = False

    def key_authorization(self, account_key):
        digest = hashlib.sha256(
            account_key.public.fingerprint().encode("ascii")).hexdigest()
        return f"{self.token}.{digest[:32]}"


@dataclass
class Order:
    order_id: int
    account_id: int
    identifiers: tuple
    status: OrderStatus = OrderStatus.PENDING
    challenges: list = field(default_factory=list)
    certificate: object = None


@dataclass
class Account:
    account_id: int
    public_key: object
    contact: str


class WellKnownStore:
    """The simulated ``/.well-known/acme-challenge/`` of the Internet.

    Maps ``(identifier, token) → key authorization``; the ACME server
    "fetches" from here during validation, so a client that does not
    control the name cannot pass the challenge.
    """

    def __init__(self):
        self._content = {}

    def publish(self, identifier, token, key_authorization):
        self._content[(identifier, token)] = key_authorization

    def fetch(self, identifier, token):
        return self._content.get((identifier, token))

    def withdraw(self, identifier, token):
        self._content.pop((identifier, token), None)


class ACMEServer:
    """The CA-side ACME endpoint in front of a CertificateAuthority."""

    def __init__(self, ca, well_known, ct_logs=None, validity_days=90):
        self.ca = ca
        self.well_known = well_known
        self.ct_logs = ct_logs
        self.validity_days = validity_days
        self._accounts = {}
        self._orders = {}
        self._next_account = 1
        self._next_order = 1

    # --- account management -----------------------------------------------------

    def new_account(self, public_key, contact):
        account = Account(account_id=self._next_account,
                          public_key=public_key, contact=contact)
        self._accounts[account.account_id] = account
        self._next_account += 1
        return account

    def _account(self, account_id):
        account = self._accounts.get(account_id)
        if account is None:
            raise ACMEError(f"unknown account {account_id}")
        return account

    # --- orders --------------------------------------------------------------------

    def new_order(self, account_id, identifiers):
        account = self._account(account_id)
        if not identifiers:
            raise ACMEError("order needs at least one identifier")
        order = Order(order_id=self._next_order,
                      account_id=account.account_id,
                      identifiers=tuple(identifiers))
        for identifier in identifiers:
            token = hashlib.sha256(
                f"{order.order_id}|{identifier}".encode()).hexdigest()[:24]
            order.challenges.append(Challenge(identifier=identifier,
                                              token=token))
        self._orders[order.order_id] = order
        self._next_order += 1
        return order

    def validate_challenges(self, order_id):
        """Fetch each challenge from the well-known store and verify."""
        order = self._orders[order_id]
        account = self._account(order.account_id)
        for challenge in order.challenges:
            served = self.well_known.fetch(challenge.identifier,
                                           challenge.token)
            expected_suffix = hashlib.sha256(
                account.public_key.fingerprint().encode(
                    "ascii")).hexdigest()[:32]
            if served != f"{challenge.token}.{expected_suffix}":
                order.status = OrderStatus.INVALID
                raise ACMEError(
                    f"challenge for {challenge.identifier} failed")
            challenge.validated = True
        order.status = OrderStatus.READY
        return order

    def finalize(self, order_id, subject_key, now):
        """Issue the certificate for a READY order (the CSR step)."""
        order = self._orders[order_id]
        if order.status is not OrderStatus.READY:
            raise ACMEError(f"order {order_id} is {order.status.value}, "
                            "not ready")
        leaf, _key = self.ca.issue_leaf(
            order.identifiers[0], now=now,
            san_dns_names=order.identifiers,
            validity_days=self.validity_days,
            subject_key=subject_key)
        if self.ct_logs is not None:
            # The ACME endpoint submits to CT itself: automation brings
            # transparency even when the backing CA never logged before
            # (precisely the shift the paper advocates for vendor CAs).
            self.ct_logs.submit(leaf, timestamp=now)
        order.certificate = leaf
        order.status = OrderStatus.VALID
        return leaf


class ACMEClient:
    """The server-operator side: enrolls names, renews automatically."""

    #: Renew when 1/3 of the lifetime remains (Let's Encrypt guidance).
    RENEWAL_FRACTION = 1 / 3

    def __init__(self, acme_server, well_known, contact, rng=None):
        self.server = acme_server
        self.well_known = well_known
        self.account_key = generate_keypair(512, rng=rng)
        self.account = acme_server.new_account(self.account_key.public,
                                               contact)
        self.certificates = {}   # identifier tuple → current leaf

    def obtain(self, identifiers, now, subject_key=None):
        """Run the full order → challenge → finalize flow."""
        identifiers = tuple(identifiers)
        order = self.server.new_order(self.account.account_id, identifiers)
        for challenge in order.challenges:
            self.well_known.publish(
                challenge.identifier, challenge.token,
                challenge.key_authorization(self.account_key))
        self.server.validate_challenges(order.order_id)
        for challenge in order.challenges:
            self.well_known.withdraw(challenge.identifier, challenge.token)
        subject_key = subject_key or generate_keypair(512)
        leaf = self.server.finalize(order.order_id, subject_key, now)
        self.certificates[identifiers] = leaf
        return leaf

    def needs_renewal(self, identifiers, at):
        leaf = self.certificates.get(tuple(identifiers))
        if leaf is None:
            return True
        remaining = leaf.not_after - at
        lifetime = leaf.not_after - leaf.not_before
        return remaining <= lifetime * self.RENEWAL_FRACTION

    def renew_due(self, at):
        """Renew every enrolled name that has entered its renewal window.

        Returns the list of identifier tuples that were renewed — this is
        the "set it and *don't* forget it" loop the paper wants vendors
        to run.
        """
        renewed = []
        for identifiers in list(self.certificates):
            if self.needs_renewal(identifiers, at):
                self.obtain(identifiers, now=at)
                renewed.append(identifiers)
        return renewed
