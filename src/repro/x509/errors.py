"""Exception hierarchy for the PKI substrate."""


class X509Error(Exception):
    """Base class for all PKI substrate errors."""


class DERDecodeError(X509Error):
    """Raised when bytes cannot be decoded as valid DER."""


class SignatureError(X509Error):
    """Raised when a signature fails verification."""


class IssuanceError(X509Error):
    """Raised when a CA refuses to issue a certificate."""
