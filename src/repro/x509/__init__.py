"""X.509 / PKI substrate.

Implements the slice of the PKI that the paper's server-side analysis
(Section 5) depends on:

- DER encoding/decoding (:mod:`repro.x509.asn1`),
- RSA key generation and signing with reduced key sizes
  (:mod:`repro.x509.keys`),
- distinguished names and RFC 6125-style host matching
  (:mod:`repro.x509.names`),
- the certificate model with DER serialization
  (:mod:`repro.x509.certificate`),
- certificate authorities, public-trust and private
  (:mod:`repro.x509.ca`),
- trust stores modelled on the Mozilla/Apple/Microsoft root programs
  (:mod:`repro.x509.truststore`),
- chain building (:mod:`repro.x509.chain`) and Zeek-style validation
  (:mod:`repro.x509.validation`),
- an RFC 6962-style Certificate Transparency log with Merkle inclusion
  proofs (:mod:`repro.x509.ct`).
"""

from repro.x509.certificate import Certificate, DistinguishedName
from repro.x509.keys import RSAKeyPair, generate_keypair
from repro.x509.ca import CertificateAuthority, IssuancePolicy
from repro.x509.truststore import TrustStore
from repro.x509.validation import ChainStatus, ChainValidator, ValidationReport
from repro.x509.ct import CTLog, CTLogSet
from repro.x509.errors import X509Error, DERDecodeError, SignatureError

__all__ = [
    "Certificate",
    "DistinguishedName",
    "RSAKeyPair",
    "generate_keypair",
    "CertificateAuthority",
    "IssuancePolicy",
    "TrustStore",
    "ChainStatus",
    "ChainValidator",
    "ValidationReport",
    "CTLog",
    "CTLogSet",
    "X509Error",
    "DERDecodeError",
    "SignatureError",
]
