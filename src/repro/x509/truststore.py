"""Trust stores modelled on the major root programs.

The paper validates chains against the Mozilla store (Zeek's default)
supplemented with the Apple and Microsoft stores.  A :class:`TrustStore`
holds trusted root certificates indexed by subject and by key fingerprint;
:func:`major_stores` builds the three-store ensemble for a given population
of public-trust CAs (each store may miss a few roots, as the real programs
do, which is why the paper unions them).
"""


class TrustStore:
    """A named collection of trusted root certificates."""

    def __init__(self, name, roots=()):
        self.name = name
        self._by_fingerprint = {}
        self._by_subject = {}
        for root in roots:
            self.add(root)

    def add(self, root):
        if not root.is_ca:
            raise ValueError("only CA certificates belong in a trust store")
        self._by_fingerprint[root.fingerprint()] = root
        self._by_subject.setdefault(str(root.subject), []).append(root)

    def __len__(self):
        return len(self._by_fingerprint)

    def __iter__(self):
        return iter(self._by_fingerprint.values())

    def contains(self, certificate):
        """Exact membership by DER fingerprint."""
        return certificate.fingerprint() in self._by_fingerprint

    def find_issuer(self, certificate):
        """Return a trusted root whose subject matches ``certificate``'s
        issuer and whose key verifies its signature, else None."""
        for candidate in self._by_subject.get(str(certificate.issuer), []):
            if candidate.public_key.verifies(certificate.tbs_der,
                                             certificate.signature):
                return candidate
        return None

    def union(self, *others):
        """A new store containing this store's roots plus ``others``'."""
        merged = TrustStore("+".join([self.name] + [o.name for o in others]))
        for store in (self, *others):
            for root in store:
                if not merged.contains(root):
                    merged.add(root)
        return merged


def major_stores(public_cas, rng=None):
    """Build Mozilla/Apple/Microsoft-style stores for ``public_cas``.

    Every public-trust root lands in the Mozilla store (the baseline the
    paper uses via Zeek); the Apple and Microsoft stores each carry the
    same population — divergence between real programs exists but does not
    drive any finding, so the ensemble is kept aligned.
    """
    mozilla = TrustStore("mozilla", [ca.root for ca in public_cas])
    apple = TrustStore("apple", [ca.root for ca in public_cas])
    microsoft = TrustStore("microsoft", [ca.root for ca in public_cas])
    return mozilla, apple, microsoft
