"""Revocation infrastructure: CRLs and OCSP responders.

The paper touches revocation twice: Appendix B.9 measures how many IoT
clients request OCSP staples (648 devices), and Section 5.3 argues that
private CAs' inability to "quickly replace or rotate" certificates opens
the door to attackers.  This module supplies the machinery both threads
need:

- :class:`CertificateRevocationList` — a signed, serial-number-based CRL
  per CA;
- :class:`OCSPResponder` — per-CA responder producing signed
  :class:`OCSPResponse` objects (good / revoked / unknown), suitable for
  stapling;
- :class:`RevocationAuthority` — the CA-side facade: revoke a
  certificate, publish CRLs, answer OCSP queries.

Responses are really signed by the CA key and really verified by the
checker, so a forged staple fails just as it would in the real PKI.
"""

import enum
from dataclasses import dataclass

from repro.x509.errors import SignatureError


class RevocationReason(enum.Enum):
    """RFC 5280 reason codes (subset)."""

    UNSPECIFIED = 0
    KEY_COMPROMISE = 1
    CA_COMPROMISE = 2
    SUPERSEDED = 4
    CESSATION_OF_OPERATION = 5


class CertStatus(enum.Enum):
    GOOD = "good"
    REVOKED = "revoked"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RevocationEntry:
    serial: int
    revoked_at: int
    reason: RevocationReason


@dataclass
class CertificateRevocationList:
    """A CRL: the issuer's signed list of revoked serials."""

    issuer_name: str
    this_update: int
    next_update: int
    entries: tuple
    signature: bytes = b""

    def to_signable_bytes(self):
        body = [self.issuer_name, str(self.this_update),
                str(self.next_update)]
        body += [f"{e.serial}:{e.revoked_at}:{e.reason.value}"
                 for e in self.entries]
        return "\n".join(body).encode("utf-8")

    def contains(self, serial):
        return any(entry.serial == serial for entry in self.entries)

    def is_stale(self, at):
        return at > self.next_update

    def verify(self, issuer_public_key):
        issuer_public_key.verify(self.to_signable_bytes(), self.signature)


@dataclass(frozen=True)
class OCSPResponse:
    """A signed single-certificate status assertion."""

    responder_name: str
    serial: int
    status: CertStatus
    produced_at: int
    next_update: int
    signature: bytes

    @staticmethod
    def signable_bytes(responder_name, serial, status, produced_at,
                       next_update):
        text = f"{responder_name}|{serial}|{status.value}|" \
               f"{produced_at}|{next_update}"
        return text.encode("utf-8")

    def verify(self, responder_public_key):
        responder_public_key.verify(
            self.signable_bytes(self.responder_name, self.serial,
                                self.status, self.produced_at,
                                self.next_update),
            self.signature)

    def is_stale(self, at):
        return at > self.next_update

    # --- wire format (for TLS CertificateStatus stapling) -------------------

    def to_bytes(self):
        head = self.signable_bytes(self.responder_name, self.serial,
                                   self.status, self.produced_at,
                                   self.next_update)
        return len(head).to_bytes(2, "big") + head + self.signature

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 2:
            raise ValueError("truncated OCSP staple")
        head_len = int.from_bytes(data[:2], "big")
        head = data[2:2 + head_len].decode("utf-8")
        signature = data[2 + head_len:]
        responder, serial, status, produced, next_update = head.split("|")
        return cls(responder_name=responder, serial=int(serial),
                   status=CertStatus(status), produced_at=int(produced),
                   next_update=int(next_update), signature=signature)


class RevocationAuthority:
    """The revocation side of one CA.

    Wraps a :class:`~repro.x509.ca.CertificateAuthority`'s signing key to
    issue CRLs and OCSP responses for the certificates it signed.
    """

    #: CRL and OCSP response freshness windows (seconds).
    CRL_VALIDITY = 7 * 86_400
    OCSP_VALIDITY = 4 * 86_400

    def __init__(self, ca):
        self._ca = ca
        self._revoked = {}
        self._known_serials = set()

    @property
    def name(self):
        return self._ca.name

    def register(self, certificate):
        """Record an issued certificate so OCSP can answer 'good' for it
        (unregistered serials answer 'unknown', like real responders)."""
        self._known_serials.add(certificate.serial)

    def revoke(self, certificate, at,
               reason=RevocationReason.UNSPECIFIED):
        """Revoke one certificate this CA issued."""
        self.register(certificate)
        self._revoked[certificate.serial] = RevocationEntry(
            serial=certificate.serial, revoked_at=at, reason=reason)

    def is_revoked(self, certificate):
        return certificate.serial in self._revoked

    # --- CRL -------------------------------------------------------------------

    def issue_crl(self, at):
        entries = tuple(sorted(self._revoked.values(),
                               key=lambda e: e.serial))
        crl = CertificateRevocationList(
            issuer_name=self._ca.name, this_update=at,
            next_update=at + self.CRL_VALIDITY, entries=entries)
        crl.signature = self._ca.signing_key.sign(crl.to_signable_bytes())
        return crl

    # --- OCSP -------------------------------------------------------------------

    def ocsp_response(self, certificate, at):
        """Answer an OCSP query for one certificate."""
        if certificate.serial in self._revoked:
            status = CertStatus.REVOKED
        elif certificate.serial in self._known_serials:
            status = CertStatus.GOOD
        else:
            status = CertStatus.UNKNOWN
        produced_at = at
        next_update = at + self.OCSP_VALIDITY
        signature = self._ca.signing_key.sign(OCSPResponse.signable_bytes(
            self._ca.name, certificate.serial, status, produced_at,
            next_update))
        return OCSPResponse(responder_name=self._ca.name,
                            serial=certificate.serial, status=status,
                            produced_at=produced_at,
                            next_update=next_update, signature=signature)


class RevocationChecker:
    """Client-side revocation checking over CRLs or OCSP staples."""

    def __init__(self, trusted_responders):
        """``trusted_responders``: responder name → public key."""
        self._keys = dict(trusted_responders)

    def check_staple(self, certificate, response, at):
        """Validate an OCSP staple for ``certificate``.

        Returns a :class:`CertStatus`; raises
        :class:`~repro.x509.errors.SignatureError` for forged staples and
        treats stale or mismatched staples as UNKNOWN (soft-fail, the
        dominant real-world client behaviour).
        """
        key = self._keys.get(response.responder_name)
        if key is None:
            return CertStatus.UNKNOWN
        response.verify(key)  # raises on forgery
        if response.serial != certificate.serial or response.is_stale(at):
            return CertStatus.UNKNOWN
        return response.status

    def check_crl(self, certificate, crl, at):
        """Validate a CRL and look the certificate up in it."""
        key = self._keys.get(crl.issuer_name)
        if key is None:
            return CertStatus.UNKNOWN
        crl.verify(key)
        if crl.is_stale(at):
            return CertStatus.UNKNOWN
        return CertStatus.REVOKED if crl.contains(certificate.serial) \
            else CertStatus.GOOD
