"""Certificate Transparency: RFC 6962-style Merkle-tree logs.

Section 5.4 of the paper queries CT (via crt.sh) for every captured leaf.
We model the log ecosystem faithfully enough that "is this certificate
logged?" is a real query against real logs: a :class:`CTLog` is an
append-only Merkle tree over certificate DER with RFC 6962 hashing
(leaf hash ``SHA256(0x00 || entry)``, node hash ``SHA256(0x01 || l || r)``),
signed certificate timestamps on submission, and audit (inclusion) proofs
that verify against the tree head.

Public-trust CAs submit their leafs on issuance (browser CT enforcement);
the private vendor CAs in the study never do — which is precisely the
visibility gap the paper highlights.
"""

import hashlib
from dataclasses import dataclass


def _leaf_hash(entry):
    return hashlib.sha256(b"\x00" + entry).digest()


def _node_hash(left, right):
    return hashlib.sha256(b"\x01" + left + right).digest()


@dataclass(frozen=True)
class SignedCertificateTimestamp:
    """A log's promise to include an entry: log id, index, timestamp."""

    log_id: str
    index: int
    timestamp: int


@dataclass(frozen=True)
class InclusionProof:
    """An RFC 6962 audit path for one leaf."""

    log_id: str
    leaf_index: int
    tree_size: int
    audit_path: tuple


class CTLog:
    """A single append-only certificate transparency log."""

    def __init__(self, log_id):
        self.log_id = log_id
        self._entries = []
        self._index_by_fingerprint = {}

    def __len__(self):
        return len(self._entries)

    def submit(self, certificate, timestamp=0):
        """Append a certificate (idempotent per fingerprint); return an SCT."""
        fingerprint = certificate.fingerprint()
        existing = self._index_by_fingerprint.get(fingerprint)
        if existing is not None:
            return SignedCertificateTimestamp(self.log_id, existing, timestamp)
        index = len(self._entries)
        self._entries.append(certificate.to_der())
        self._index_by_fingerprint[fingerprint] = index
        return SignedCertificateTimestamp(self.log_id, index, timestamp)

    def contains(self, certificate):
        return certificate.fingerprint() in self._index_by_fingerprint

    # --- Merkle tree ----------------------------------------------------------

    def tree_head(self):
        """Merkle tree hash over the current entries (RFC 6962 MTH)."""
        return self._mth([_leaf_hash(e) for e in self._entries])

    @classmethod
    def _mth(cls, hashes):
        if not hashes:
            return hashlib.sha256(b"").digest()
        if len(hashes) == 1:
            return hashes[0]
        split = cls._largest_power_of_two_below(len(hashes))
        return _node_hash(cls._mth(hashes[:split]), cls._mth(hashes[split:]))

    @staticmethod
    def _largest_power_of_two_below(n):
        power = 1
        while power * 2 < n:
            power *= 2
        return power

    def prove_inclusion(self, certificate):
        """Return an :class:`InclusionProof`, or None if not logged."""
        index = self._index_by_fingerprint.get(certificate.fingerprint())
        if index is None:
            return None
        hashes = [_leaf_hash(e) for e in self._entries]
        path = self._audit_path(index, hashes)
        return InclusionProof(log_id=self.log_id, leaf_index=index,
                              tree_size=len(hashes), audit_path=tuple(path))

    @classmethod
    def _audit_path(cls, index, hashes):
        if len(hashes) <= 1:
            return []
        split = cls._largest_power_of_two_below(len(hashes))
        if index < split:
            return cls._audit_path(index, hashes[:split]) + [cls._mth(hashes[split:])]
        return (cls._audit_path(index - split, hashes[split:])
                + [cls._mth(hashes[:split])])

    def verify_inclusion(self, certificate, proof):
        """Recompute the tree head from the proof and compare."""
        if proof.log_id != self.log_id or proof.tree_size != len(self._entries):
            return False
        computed = self._root_from_path(
            _leaf_hash(certificate.to_der()), proof.leaf_index,
            proof.tree_size, list(proof.audit_path))
        return computed == self.tree_head()

    @classmethod
    def _root_from_path(cls, leaf_hash, index, size, path):
        if size == 1:
            return leaf_hash if not path else None
        split = cls._largest_power_of_two_below(size)
        sibling = path[-1]
        rest = path[:-1]
        if index < split:
            left = cls._root_from_path(leaf_hash, index, split, rest)
            return None if left is None else _node_hash(left, sibling)
        right = cls._root_from_path(leaf_hash, index - split, size - split, rest)
        return None if right is None else _node_hash(sibling, right)


class CTLogSet:
    """The log ecosystem: several logs queried as one (crt.sh-style)."""

    def __init__(self, log_ids=("argon", "xenon", "nessie")):
        self.logs = [CTLog(log_id) for log_id in log_ids]

    def submit(self, certificate, timestamp=0):
        """Submit to every log (as CAs do to satisfy SCT-count policies)."""
        return [log.submit(certificate, timestamp) for log in self.logs]

    def query(self, certificate):
        """True when any log contains the certificate."""
        return any(log.contains(certificate) for log in self.logs)

    def prove(self, certificate):
        """Inclusion proofs from every log that has the certificate."""
        proofs = (log.prove_inclusion(certificate) for log in self.logs)
        return [proof for proof in proofs if proof is not None]
