"""RSA key generation and PKCS#1-style signatures (reduced parameters).

The paper's substrate needs *real* sign/verify semantics — chains must
actually verify, tampered certificates must actually fail — but not
production key sizes.  We generate RSA keys with Miller–Rabin primes
(default 512-bit modulus; plenty for a simulator, instant to generate) and
sign SHA-256 digests with deterministic PKCS#1 v1.5-style padding.

Key generation accepts a seeded ``random.Random`` so that the synthetic
world is fully reproducible.
"""

import hashlib
import random
from dataclasses import dataclass

from repro.x509.errors import SignatureError

#: Small primes for fast trial division before Miller–Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)

#: DER prefix of the DigestInfo structure for SHA-256 (RFC 8017 section 9.2).
_SHA256_DIGEST_INFO_PREFIX = bytes.fromhex(
    "3031300d060960864801650304020105000420")


def _is_probable_prime(candidate, rng, rounds=10):
    """Miller–Rabin primality test with ``rounds`` random witnesses."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    d, r = candidate - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits, rng):
    """Generate a ``bits``-bit probable prime using ``rng``."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bit_length(self):
        return self.n.bit_length()

    @property
    def byte_length(self):
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self):
        """SHA-256 hex digest identifying this key (subject key identifier)."""
        blob = self.n.to_bytes(self.byte_length, "big") + self.e.to_bytes(4, "big")
        return hashlib.sha256(blob).hexdigest()

    def verify(self, message, signature):
        """Verify a signature over ``message``; raise SignatureError on failure."""
        if len(signature) != self.byte_length:
            raise SignatureError("signature length does not match modulus")
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            raise SignatureError("signature value out of range")
        recovered = pow(sig_int, self.e, self.n)
        expected = int.from_bytes(_pad_digest(message, self.byte_length), "big")
        if recovered != expected:
            raise SignatureError("signature does not verify")

    def verifies(self, message, signature):
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True


@dataclass(frozen=True)
class RSAKeyPair:
    """An RSA keypair; the private exponent stays inside this object."""

    public: RSAPublicKey
    d: int

    def sign(self, message):
        """Sign SHA-256(message) with deterministic PKCS#1 v1.5 padding."""
        padded = _pad_digest(message, self.public.byte_length)
        value = int.from_bytes(padded, "big")
        signature = pow(value, self.d, self.public.n)
        return signature.to_bytes(self.public.byte_length, "big")


def _pad_digest(message, length):
    """EMSA-PKCS1-v1_5 padding of the SHA-256 DigestInfo of ``message``."""
    digest_info = _SHA256_DIGEST_INFO_PREFIX + hashlib.sha256(message).digest()
    pad_len = length - len(digest_info) - 3
    if pad_len < 8:
        raise SignatureError("modulus too small for SHA-256 DigestInfo")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_info


class KeyPool:
    """A deterministic pool of pre-generated keypairs.

    Issuing ~900 leaf certificates dominates world-build time when every
    leaf gets a fresh RSA key.  The simulator's analyses never depend on
    key uniqueness across unrelated certificates, so leaf keys cycle
    through a seeded pool (CA keys stay unique).  Certificate *sharing*
    semantics are unaffected: shared certs reuse the same certificate
    object, not merely the same key.
    """

    def __init__(self, size=48, bits=512, rng=None):
        rng = rng or random.Random(0xC0FFEE)
        self._keys = [generate_keypair(bits, rng=rng) for _ in range(size)]
        self._next = 0

    def take(self):
        key = self._keys[self._next % len(self._keys)]
        self._next += 1
        return key


def generate_keypair(bits=512, rng=None, e=65537):
    """Generate an RSA keypair with a ``bits``-bit modulus.

    Args:
        bits: modulus size; the simulator default of 512 keeps world
            generation fast while exercising real signature math.
        rng: a ``random.Random`` for reproducibility; a fresh system-seeded
            instance is used when omitted.
        e: public exponent.
    """
    if bits < 384:
        raise ValueError("modulus below 384 bits cannot carry a SHA-256 signature")
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        return RSAKeyPair(public=RSAPublicKey(n=n, e=e), d=d)
