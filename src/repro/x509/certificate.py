"""X.509-style certificates with real DER serialization and signatures.

A :class:`Certificate` carries the fields the paper's server-side analysis
consumes — subject/issuer names, validity window, SANs, CA flag, public key
— and round-trips through a DER encoding structured like a real X.509 v3
certificate (TBSCertificate / signatureAlgorithm / signatureValue).  The
signature is a real RSA signature over the TBS bytes, so chain validation
performs actual cryptographic verification.
"""

import hashlib
from dataclasses import dataclass, field

from repro.x509 import asn1
from repro.x509.errors import DERDecodeError, SignatureError
from repro.x509.keys import RSAPublicKey
from repro.x509.names import DistinguishedName, certificate_covers_host

#: AlgorithmIdentifier OIDs.
OID_RSA_ENCRYPTION = "1.2.840.113549.1.1.1"
OID_SHA256_WITH_RSA = "1.2.840.113549.1.1.11"

#: Extension OIDs.
OID_BASIC_CONSTRAINTS = "2.5.29.19"
OID_SUBJECT_ALT_NAME = "2.5.29.17"

_SECONDS_PER_DAY = 86400


def _algorithm_identifier(oid):
    return asn1.encode_sequence(asn1.encode_oid(oid), asn1.encode_null())


def _encode_spki(public_key):
    rsa_key = asn1.encode_sequence(
        asn1.encode_integer(public_key.n), asn1.encode_integer(public_key.e))
    return asn1.encode_sequence(
        _algorithm_identifier(OID_RSA_ENCRYPTION), asn1.encode_bit_string(rsa_key))


def _decode_spki(node):
    algorithm = node[0][0].as_oid()
    if algorithm != OID_RSA_ENCRYPTION:
        raise DERDecodeError(f"unsupported public key algorithm: {algorithm}")
    key_node = asn1.decode(node[1].as_bit_string())
    return RSAPublicKey(n=key_node[0].as_integer(), e=key_node[1].as_integer())


def _encode_extensions(is_ca, san_dns_names):
    extensions = []
    basic = asn1.encode_sequence(asn1.encode_boolean(is_ca)) if is_ca \
        else asn1.encode_sequence()
    extensions.append(asn1.encode_sequence(
        asn1.encode_oid(OID_BASIC_CONSTRAINTS),
        asn1.encode_boolean(True),  # critical
        asn1.encode_octet_string(basic),
    ))
    if san_dns_names:
        names = b"".join(
            asn1.encode_tlv(asn1.Tag.context(2, constructed=False),
                            name.encode("ascii"))
            for name in san_dns_names
        )
        extensions.append(asn1.encode_sequence(
            asn1.encode_oid(OID_SUBJECT_ALT_NAME),
            asn1.encode_octet_string(asn1.encode_sequence(names)),
        ))
    return asn1.encode_context(3, asn1.encode_sequence(*extensions))


def _decode_extensions(node):
    """Return ``(is_ca, san_dns_names)`` from an extensions [3] node."""
    is_ca, san = False, []
    for extension in node[0]:
        oid = extension[0].as_oid()
        value = extension[-1].as_octet_string()
        if oid == OID_BASIC_CONSTRAINTS:
            inner = asn1.decode(value)
            if len(inner) and inner[0].tag == asn1.Tag.BOOLEAN:
                is_ca = inner[0].as_boolean()
        elif oid == OID_SUBJECT_ALT_NAME:
            inner = asn1.decode(value)
            for general_name in inner:
                if general_name.tag == asn1.Tag.context(2, constructed=False):
                    san.append(general_name.content.decode("ascii"))
    return is_ca, tuple(san)


@dataclass(frozen=True)
class Certificate:
    """An immutable certificate.

    Build instances with :func:`sign_certificate` (or a
    :class:`~repro.x509.ca.CertificateAuthority`) so the signature is
    consistent with the TBS bytes.
    """

    serial: int
    subject: DistinguishedName
    issuer: DistinguishedName
    not_before: int
    not_after: int
    public_key: RSAPublicKey
    san_dns_names: tuple = ()
    is_ca: bool = False
    tbs_der: bytes = b""
    signature: bytes = b""

    # --- identity -----------------------------------------------------------

    def to_der(self):
        return asn1.encode_sequence(
            self.tbs_der,
            _algorithm_identifier(OID_SHA256_WITH_RSA),
            asn1.encode_bit_string(self.signature),
        )

    def fingerprint(self):
        """SHA-256 hex digest of the DER encoding."""
        return hashlib.sha256(self.to_der()).hexdigest()

    # --- semantic accessors ---------------------------------------------------

    @property
    def validity_days(self):
        """Validity period length in (possibly fractional) days."""
        return (self.not_after - self.not_before) / _SECONDS_PER_DAY

    def is_expired(self, at):
        return at > self.not_after

    def is_not_yet_valid(self, at):
        return at < self.not_before

    def is_time_valid(self, at):
        return self.not_before <= at <= self.not_after

    @property
    def is_self_issued(self):
        """Subject equals issuer (necessary for self-signed)."""
        return self.subject == self.issuer

    def is_self_signed(self):
        """Self-issued *and* verifies under its own key."""
        return self.is_self_issued and self.public_key.verifies(
            self.tbs_der, self.signature)

    def covers_host(self, hostname):
        """Host-name check per RFC 6125 (SAN authoritative, CN fallback)."""
        return certificate_covers_host(
            self.subject.common_name, self.san_dns_names, hostname)

    def verify_signature(self, issuer_public_key):
        """Verify this certificate's signature; raises SignatureError."""
        issuer_public_key.verify(self.tbs_der, self.signature)

    # --- DER round-trip -------------------------------------------------------

    @classmethod
    def from_der(cls, data):
        root = asn1.decode(data)
        if len(root) != 3:
            raise DERDecodeError("certificate must have exactly three members")
        tbs, _sig_alg, sig_value = root
        signature = sig_value.as_bit_string()
        members = list(tbs)
        index = 0
        if members[index].tag == asn1.Tag.context(0):
            index += 1  # version [0]
        serial = members[index].as_integer()
        index += 2  # skip signature AlgorithmIdentifier inside TBS
        issuer = DistinguishedName.from_asn1(members[index])
        index += 1
        validity = members[index]
        not_before = validity[0].as_time()
        not_after = validity[1].as_time()
        index += 1
        subject = DistinguishedName.from_asn1(members[index])
        index += 1
        public_key = _decode_spki(members[index])
        index += 1
        is_ca, san = False, ()
        if index < len(members) and members[index].tag == asn1.Tag.context(3):
            is_ca, san = _decode_extensions(members[index])
        # Re-encode the TBS exactly as found so signatures keep verifying.
        tbs_der = asn1.encode_tlv(tbs.tag, tbs.content)
        return cls(serial=serial, subject=subject, issuer=issuer,
                   not_before=not_before, not_after=not_after,
                   public_key=public_key, san_dns_names=san, is_ca=is_ca,
                   tbs_der=tbs_der, signature=signature)


def build_tbs(serial, subject, issuer, not_before, not_after, public_key,
              san_dns_names=(), is_ca=False):
    """Encode a TBSCertificate."""
    return asn1.encode_sequence(
        asn1.encode_context(0, asn1.encode_integer(2)),  # version: v3
        asn1.encode_integer(serial),
        _algorithm_identifier(OID_SHA256_WITH_RSA),
        issuer.to_der(),
        asn1.encode_sequence(asn1.encode_time(not_before),
                             asn1.encode_time(not_after)),
        subject.to_der(),
        _encode_spki(public_key),
        _encode_extensions(is_ca, san_dns_names),
    )


def sign_certificate(serial, subject, issuer, issuer_keypair, not_before,
                     not_after, public_key, san_dns_names=(), is_ca=False):
    """Build and sign a certificate in one step."""
    tbs = build_tbs(serial, subject, issuer, not_before, not_after,
                    public_key, san_dns_names=san_dns_names, is_ca=is_ca)
    return Certificate(
        serial=serial, subject=subject, issuer=issuer,
        not_before=not_before, not_after=not_after, public_key=public_key,
        san_dns_names=tuple(san_dns_names), is_ca=is_ca, tbs_der=tbs,
        signature=issuer_keypair.sign(tbs),
    )
