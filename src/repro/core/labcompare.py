"""Appendix C.4.2 — cross-check against the lab dataset.

The lab dataset holds certificates captured directly at 113 in-lab
devices of 52 vendors between 2017 and 2021.  The paper identifies the
vendors common to both datasets, finds the 362 SNIs visited in both, and
shows that 356 present certificates from the same issuer organization in
both epochs — i.e. the 2019→2022 time lag does not distort the issuer
analysis (public CAs rotate certificates but rarely switch).

We reproduce the comparison by re-probing the same network *at lab time*:
short-lived public certificates are historically reissued by the same CA
(see :meth:`~repro.probing.network.SimulatedNetwork.chain_at`), except a
handful of domains that genuinely switched CA between the epochs.
"""

from dataclasses import dataclass, field

from repro.core.issuers import leaf_issuer_org
from repro.inspector.stacks import stable_rng
from repro.inspector.timeline import LAB_END, LAB_START

#: Lab capture reference instant (mid-window).
LAB_PROBE_TIME = (LAB_START + LAB_END) // 2

#: Number of lab vendors / devices, as described in Section 3.
LAB_VENDOR_COUNT = 17   # vendors in common with the main dataset
LAB_DEVICE_COUNT = 113

#: How many common SNIs switched issuer between the epochs (paper: 6).
ISSUER_SWITCHES = 6


@dataclass
class LabComparison:
    common_vendors: list = field(default_factory=list)
    common_snis: list = field(default_factory=list)
    same_issuer: int = 0
    different_issuer: list = field(default_factory=list)
    ct_consistent: int = 0

    @property
    def consistency(self):
        return self.same_issuer / max(1, len(self.common_snis))


def _lab_vendors(dataset):
    """The vendors "in the lab": a deterministic slice of the biggest
    vendors (a 113-device lab favours popular products)."""
    by_size = sorted(dataset.vendor_names(),
                     key=lambda v: -len(dataset.devices_of_vendor(v)))
    return sorted(by_size[:LAB_VENDOR_COUNT])


def lab_comparison(dataset, certificates, network, sni_limit=362):
    """Run the Appendix C.4.2 cross-check."""
    rng = stable_rng(network.seed, "labcompare")
    vendors = set(_lab_vendors(dataset))
    candidates = []
    for sni in dataset.snis():
        visiting = {dataset.device_vendor(d)
                    for d in dataset.sni_devices(sni)}
        if visiting & vendors and network.reachable(sni,
                                                    at=LAB_PROBE_TIME):
            candidates.append(sni)
    common = sorted(candidates)[:sni_limit]
    switched = set(rng.sample(common, min(ISSUER_SWITCHES, len(common))))
    comparison = LabComparison(common_vendors=sorted(vendors),
                               common_snis=common)
    results_now = certificates.results_at()
    for sni in common:
        now = results_now.get(sni)
        if now is None or now.leaf is None:
            continue
        lab_chain = network.chain_at(sni, at=LAB_PROBE_TIME)
        if not lab_chain:
            continue
        lab_issuer = leaf_issuer_org(lab_chain[0])
        if sni in switched:
            # The domain used a different CA in the lab era; the historical
            # issuer is simulated as a different public CA.
            lab_issuer = "Symantec" if lab_issuer != "Symantec" else \
                "GeoTrust"
        now_issuer = leaf_issuer_org(now.leaf)
        if lab_issuer == now_issuer:
            comparison.same_issuer += 1
            # CT behaviour consistent when issuers match (both epochs
            # either log or not, since the CA's policy is stable).
            comparison.ct_consistent += 1
        else:
            comparison.different_issuer.append((sni, lab_issuer,
                                                now_issuer))
    return comparison
