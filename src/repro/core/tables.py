"""Plain-text rendering of the paper's tables.

Benchmarks and examples print through these helpers so every table has a
consistent, diff-friendly shape.
"""


def percent(value, digits=2):
    """Format a 0..1 fraction as a percentage string."""
    return f"{100 * value:.{digits}f}%"


def render_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return " | ".join(cell.ljust(width)
                          for cell, width in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append("-+-".join("-" * width for width in widths))
    for row in text_rows:
        out.append(line(row))
    return "\n".join(out)


def render_cdf(values, points=(0.0, 0.25, 0.5, 0.75, 0.9, 1.0)):
    """Summarize a CDF by the fraction of values ≤ each point."""
    values = sorted(values)
    if not values:
        return {point: 0.0 for point in points}
    return {point: sum(1 for v in values if v <= point) / len(values)
            for point in points}


def truncate_fp(fp, width=12):
    """Short printable handle for a fingerprint key."""
    import hashlib
    digest = hashlib.sha256(repr(fp).encode()).hexdigest()
    return digest[:width]
