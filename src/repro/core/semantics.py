"""Appendix B.2 — semantics-aware TLS fingerprinting.

Extends exact matching to graded similarity between a device's proposed
*ciphersuite list* and known libraries' default lists:

- ``exact``: identical ciphersuite list (extensions/version may differ);
- ``same_set_diff_order``: same suites, different preference order;
- ``same_component``: same {kx+auth, cipher, MAC} component sets but
  different combinations;
- ``similar_component``: component sets that differ only in key/digest
  length (AES-128 ≈ AES-256, SHA256 ≈ SHA384 — but SHA-1 ≉ SHA256);
- ``customization``: none of the above.

The unit of analysis is the {device, ciphersuite list} tuple (the paper's
5,827 tuples), and Figure 8 reports the Jaccard similarity between each
matched tuple's suite list and its most likely library for the two
component categories.
"""

from collections import Counter
from dataclasses import dataclass

from repro.tlslib.ciphersuites import suite_by_code
from repro.tlslib.grease import strip_grease

#: Category labels, ordered from closest to furthest.
CATEGORIES = ("exact", "same_set_diff_order", "same_component",
              "similar_component", "customization")

#: Canonical names for "similar" algorithm equivalence: strip the key /
#: digest length so AES_128_CBC ≡ AES_256_CBC and SHA256 ≡ SHA384.
_SIMILAR_CIPHER = {
    "AES_128_CBC": "AES_CBC", "AES_256_CBC": "AES_CBC",
    "AES_128_GCM": "AES_GCM", "AES_256_GCM": "AES_GCM",
    "AES_128_CCM": "AES_CCM", "AES_256_CCM": "AES_CCM",
    "AES_128_CCM_8": "AES_CCM_8", "AES_256_CCM_8": "AES_CCM_8",
    "CAMELLIA_128_CBC": "CAMELLIA_CBC", "CAMELLIA_256_CBC": "CAMELLIA_CBC",
}
_SIMILAR_MAC = {"SHA256": "SHA2", "SHA384": "SHA2", "SHA512": "SHA2"}


def _component_sets(codes):
    """The (kx set, cipher set, mac set) of a suite list, GREASE/SCSV-free."""
    kx, ciphers, macs = set(), set(), set()
    for code in strip_grease(codes):
        suite = suite_by_code(code)
        if suite.is_signaling:
            continue
        kx.add(suite.kx)
        ciphers.add(suite.cipher)
        macs.add(suite.mac)
    return kx, ciphers, macs


def _similar_component_sets(codes):
    kx, ciphers, macs = _component_sets(codes)
    ciphers = {_SIMILAR_CIPHER.get(c, c) for c in ciphers}
    macs = {_SIMILAR_MAC.get(m, m) for m in macs}
    return kx, ciphers, macs


def _real_suites(codes):
    return tuple(code for code in strip_grease(codes)
                 if not suite_by_code(code).is_signaling)


def classify_against_library(device_suites, library_suites):
    """Classify one device suite list against one library suite list."""
    device_real = _real_suites(device_suites)
    library_real = _real_suites(library_suites)
    if device_real == library_real:
        return "exact"
    if set(device_real) == set(library_real):
        return "same_set_diff_order"
    if _component_sets(device_real) == _component_sets(library_real):
        return "same_component"
    if _similar_component_sets(device_real) == \
            _similar_component_sets(library_real):
        return "similar_component"
    return "customization"


@dataclass(frozen=True)
class SemanticMatch:
    """Result for one {device, ciphersuite list} tuple."""

    device_id: str
    vendor: str
    ciphersuites: tuple
    category: str
    library: object          # closest LibraryFingerprint or None
    jaccard: float           # suite-set Jaccard to the closest library


def _suite_jaccard(a, b):
    set_a, set_b = set(_real_suites(a)), set(_real_suites(b))
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def semantic_fingerprinting(dataset, corpus):
    """Run the Appendix B.2 analysis over all {device, suite list} tuples.

    For each tuple, the *closest* library is the one with the best
    category (then highest suite Jaccard).  Returns the list of
    :class:`SemanticMatch`.
    """
    library_lists = corpus.ciphersuite_lists()
    vendor_of = {}
    tuples = set()
    for record in dataset.records:
        tuples.add((record.device_id, tuple(record.ciphersuites)))
        vendor_of[record.device_id] = record.vendor
    # Pre-index libraries for the cheap categories.
    by_exact = {}
    by_set = {}
    by_component = {}
    by_similar = {}
    for suites, library in library_lists.items():
        real = _real_suites(suites)
        by_exact.setdefault(real, library)
        by_set.setdefault(frozenset(real), library)
        component_key = tuple(frozenset(s) for s in _component_sets(real))
        by_component.setdefault(component_key, library)
        similar_key = tuple(frozenset(s)
                            for s in _similar_component_sets(real))
        by_similar.setdefault(similar_key, library)
    results = []
    for device_id, suites in sorted(tuples):
        real = _real_suites(suites)
        library, category = None, "customization"
        if real in by_exact:
            library, category = by_exact[real], "exact"
        elif frozenset(real) in by_set:
            library, category = by_set[frozenset(real)], "same_set_diff_order"
        else:
            component_key = tuple(frozenset(s)
                                  for s in _component_sets(real))
            similar_key = tuple(frozenset(s)
                                for s in _similar_component_sets(real))
            if component_key in by_component:
                library, category = by_component[component_key], \
                    "same_component"
            elif similar_key in by_similar:
                library, category = by_similar[similar_key], \
                    "similar_component"
        jaccard_value = _suite_jaccard(
            suites, library.ciphersuites) if library else 0.0
        results.append(SemanticMatch(
            device_id=device_id, vendor=vendor_of[device_id],
            ciphersuites=tuple(suites), category=category,
            library=library, jaccard=jaccard_value))
    return results


def semantic_summary(matches):
    """Table 11 — per-category share, vendor count, and outdated share."""
    rows = {}
    total = max(1, len(matches))
    for category in CATEGORIES:
        subset = [m for m in matches if m.category == category]
        vendors = {m.vendor for m in subset}
        with_library = [m for m in subset if m.library is not None]
        outdated = [m for m in with_library
                    if not m.library.supported_in_2020]
        rows[category] = {
            "share": len(subset) / total,
            "vendors": len(vendors),
            "outdated_share": (len(outdated) / len(with_library)
                               if with_library else None),
            "count": len(subset),
        }
    return rows


def jaccard_distribution(matches, categories=("same_component",
                                              "similar_component"),
                         bins=10):
    """Figure 8 — histogram of tuple→library Jaccard per category."""
    histograms = {}
    for category in categories:
        counts = Counter()
        for match in matches:
            if match.category == category:
                bucket = min(bins - 1, int(match.jaccard * bins))
                counts[bucket] += 1
        histograms[category] = [counts.get(i, 0) for i in range(bins)]
    return histograms
