"""Appendix B.7 / B.8 — ciphersuite preference-order analyses.

Many servers honor the client's preference order, so the *position* of
vulnerable suites matters:

- B.7 (Figure 11): the lowest index of a vulnerable suite in each
  {device, ciphersuite list} tuple, aggregated per vendor;
- B.8 (Figure 12): the component algorithms (kx+auth, cipher, MAC) of the
  *first* suite in each list, per vendor — surfacing vendors that prefer
  RC4 or even anonymous/export key exchange first.
"""

from collections import Counter, defaultdict

from repro.tlslib.ciphersuites import suite_by_code
from repro.tlslib.grease import is_grease


def _tuples(dataset):
    """Distinct {device, ciphersuite list} tuples with vendor attribution."""
    seen = {}
    for record in dataset.records:
        seen.setdefault((record.device_id, record.ciphersuites),
                        record.vendor)
    return seen


def lowest_vulnerable_index(dataset):
    """Figure 11 — vendor → list of lowest vulnerable-suite indexes.

    Each element corresponds to one {device, ciphersuite list} tuple; the
    index counts real (non-GREASE, non-signaling) suites; tuples without
    any vulnerable suite contribute nothing.
    """
    indexes = defaultdict(list)
    for (device_id, suites), vendor in _tuples(dataset).items():
        position = 0
        for code in suites:
            suite = suite_by_code(code)
            if is_grease(code) or suite.is_signaling:
                continue
            if suite.vulnerable_components():
                indexes[vendor].append(position)
                break
            position += 1
    return dict(indexes)


def vendors_without_vulnerable(dataset):
    """Vendors none of whose tuples contain any vulnerable suite."""
    tuples = _tuples(dataset)
    vulnerable_vendors = set()
    all_vendors = set()
    for (device_id, suites), vendor in tuples.items():
        all_vendors.add(vendor)
        if any(suite_by_code(code).vulnerable_components()
               for code in suites):
            vulnerable_vendors.add(vendor)
    return sorted(all_vendors - vulnerable_vendors)


def vendors_preferring_vulnerable_first(dataset):
    """Vendors with at least one tuple whose first real suite is vulnerable."""
    vendors = set()
    for (device_id, suites), vendor in _tuples(dataset).items():
        for code in suites:
            suite = suite_by_code(code)
            if is_grease(code) or suite.is_signaling:
                continue
            if suite.vulnerable_components():
                vendors.add(vendor)
            break
    return sorted(vendors)


def preferred_components(dataset):
    """Figure 12 — per-vendor usage share of first-suite components.

    Returns ``{"kx": {vendor: Counter}, "cipher": ..., "mac": ...}``.
    Tuples whose first entry is a signaling value (e.g. the empty
    renegotiation SCSV) are excluded, as in the paper.
    """
    shares = {"kx": defaultdict(Counter), "cipher": defaultdict(Counter),
              "mac": defaultdict(Counter)}
    for (device_id, suites), vendor in _tuples(dataset).items():
        first = None
        for code in suites:
            if is_grease(code):
                continue
            first = suite_by_code(code)
            break
        if first is None or first.is_signaling:
            continue
        shares["kx"][vendor][first.kx] += 1
        shares["cipher"][vendor][first.cipher] += 1
        shares["mac"][vendor][first.mac] += 1
    return {component: dict(by_vendor)
            for component, by_vendor in shares.items()}
