"""Sections 5.1 / C.1 — the IoT server population (Table 15).

Aggregates the probed SNIs by second-level domain and joins device reach
from the ClientHello capture: 357 distinct SLDs, a long-tail distribution
with amazon.com at the top (57 FQDNs, 556 devices).
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.x509.names import second_level_domain


@dataclass(frozen=True)
class SLDRow:
    """One Table 15 row."""

    sld: str
    server_count: int
    device_count: int


def sld_rows(dataset, certificates):
    """Aggregate reachable servers by SLD with device reach."""
    fqdns_by_sld = defaultdict(set)
    for fqdn in certificates.reachable_fqdns():
        fqdns_by_sld[second_level_domain(fqdn)].add(fqdn)
    rows = []
    for sld, fqdns in fqdns_by_sld.items():
        devices = set()
        for fqdn in fqdns:
            devices.update(dataset.sni_devices(fqdn))
        rows.append(SLDRow(sld=sld, server_count=len(fqdns),
                           device_count=len(devices)))
    rows.sort(key=lambda row: (-row.device_count, row.sld))
    return rows


def sld_statistics(rows):
    """Headline SLD statistics (Section 5.1)."""
    if not rows:
        return {"sld_count": 0, "mean_devices": 0.0, "median_devices": 0,
                "max_devices": 0}
    device_counts = sorted(row.device_count for row in rows)
    return {
        "sld_count": len(rows),
        "mean_devices": sum(device_counts) / len(device_counts),
        "median_devices": device_counts[len(device_counts) // 2],
        "max_devices": device_counts[-1],
    }
