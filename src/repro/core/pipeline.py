"""One-call orchestration of the full study.

``run_full_study`` executes every analysis in paper order and returns a
nested dict of results — the programmatic equivalent of regenerating all
tables and figures.  Examples and the integration tests drive this.
"""

from repro.core import (
    chains,
    ct_validity,
    customization,
    geo,
    issuers,
    labcompare,
    matching,
    params,
    preferences,
    security,
    semantics,
    sharing,
    slds,
)
from repro.inspector.timeline import PROBE_TIME


def run_client_side(study):
    """Section 4 + Appendix B analyses."""
    dataset, corpus = study.dataset, study.corpus
    match_report = matching.match_against_corpus(dataset, corpus)
    semantic = semantics.semantic_fingerprinting(dataset, corpus)
    tie_fraction, ties = sharing.server_specific_fingerprints(dataset,
                                                              corpus)
    return {
        "matching": match_report,
        "degree_distribution": customization.degree_distribution(dataset),
        "doc_vendor": customization.doc_vendor_all(dataset),
        "doc_device": customization.doc_device_all(dataset),
        "heterogeneity": customization.top_vendor_heterogeneity(dataset),
        "vulnerability": security.vulnerability_report(dataset),
        "jaccard_pairs": sharing.vendor_similarity_pairs(dataset),
        "server_tie_fraction": tie_fraction,
        "server_ties": ties,
        "semantic_summary": semantics.semantic_summary(semantic),
        "versions": params.version_proposals(dataset),
        "fallback": params.fallback_scsv_usage(dataset),
        "ocsp": params.ocsp_usage(dataset),
        "grease": params.grease_usage(dataset),
        "lowest_vulnerable_index":
            preferences.lowest_vulnerable_index(dataset),
        "clean_vendors": preferences.vendors_without_vulnerable(dataset),
        "preferred_components": preferences.preferred_components(dataset),
    }


def run_server_side(study):
    """Section 5 + Appendix C analyses."""
    dataset = study.dataset
    certificates = study.certificates
    ecosystem = study.ecosystem
    validator = study.validator()
    survey = chains.validate_all(certificates, validator, at=PROBE_TIME)
    issuer_rep = issuers.issuer_report(dataset, certificates, ecosystem)
    ct_rep = ct_validity.ct_report(dataset, certificates, survey,
                                   ecosystem, study.network.ct_logs)
    sld_rows = slds.sld_rows(dataset, certificates)
    return {
        "probe_stats": (certificates.stats.to_json()
                        if certificates.stats is not None else None),
        "issuers": issuer_rep,
        "survey": survey,
        "validation_failures": chains.validation_failure_rows(
            survey, dataset, ecosystem),
        "private_issuer_rows": chains.private_issuer_rows(
            survey, dataset, ecosystem),
        "expired": chains.expired_rows(certificates, dataset),
        "ct": ct_rep,
        "netflix": ct_validity.netflix_rows(certificates,
                                            study.network.ct_logs),
        "ct_private_figure": ct_validity.private_chain_ct_figure(
            survey, ecosystem, study.network.ct_logs),
        "slds": sld_rows,
        "sld_stats": slds.sld_statistics(sld_rows),
        "geo": geo.geo_comparison(certificates),
        "lab": labcompare.lab_comparison(dataset, certificates,
                                         study.network),
    }


def run_full_study(study):
    """Everything, in paper order."""
    return {
        "client": run_client_side(study),
        "server": run_server_side(study),
    }
