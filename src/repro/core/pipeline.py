"""One-call orchestration of the full study.

``run_full_study`` executes every analysis and returns a nested dict of
results — the programmatic equivalent of regenerating all tables and
figures.  Examples and the integration tests drive this.

Since the ``repro.store`` refactor the hand-ordered call sequence is a
*declarative registry*: :data:`CLIENT_ANALYSES` and
:data:`SERVER_ANALYSES` list one :class:`~repro.store.scheduler.AnalysisSpec`
per analysis (name, inputs, function), and an
:class:`~repro.store.scheduler.AnalysisScheduler` executes the registry
in dependency order — serially for ``jobs=1``, over a thread pool
otherwise — with results byte-identical to the serial path at any worker
count (the output dict is assembled in registry order, and every node is
a pure function of its declared inputs).

When the study carries an :class:`~repro.store.artifact.ArtifactStore`
(``study.attach_store(...)``, or the CLI's ``--cache-dir``), every node
consults the store before computing, so a warm re-run touches neither
the world generator nor the prober and finishes near-instantly.

Every analysis still runs inside its own ``repro.obs`` span
(``analysis.client.<name>`` / ``analysis.server.<name>``), so a traced
run (``repro report --trace trace.jsonl``) shows exactly where the
pipeline's time goes.  With observability disabled (the default) the
spans are no-ops.
"""

from repro import obs
from repro.core import (
    chains,
    ct_validity,
    customization,
    geo,
    issuers,
    labcompare,
    params,
    preferences,
    security,
    semantics,
    sharing,
    slds,
)
from repro.inspector.timeline import PROBE_TIME
from repro.match import shared_engine
from repro.store.scheduler import AnalysisScheduler, AnalysisSpec


def _ml_attribution(resources):
    """Learned-attribution eval payload (ROADMAP item 4).

    Deferred import: ``repro.ml`` pulls in numpy, which ``import
    repro`` (and every stdlib-only pipeline node) must not.  Training
    is memoized per config inside ``repro.ml``, so the node, the
    figure exporter, and the CLI share one run per process.
    """
    from repro.ml import evaluate_components
    return evaluate_components(resources["dataset"],
                               resources["corpus"],
                               resources["world"],
                               resources["config"])

#: Section 4 + Appendix B (client-side) analyses, in paper order.
#: Matching/similarity nodes run on the process
#: :class:`~repro.match.MatchEngine` — exact by default, pruned under
#: ``engine_mode("sketch")``, digest-identical either way.
CLIENT_ANALYSES = (
    AnalysisSpec(
        "matching", inputs=("dataset", "corpus"),
        fn=lambda r: shared_engine().match_report(r["dataset"],
                                                  r["corpus"])),
    AnalysisSpec(
        "degree_distribution", inputs=("dataset",),
        fn=lambda r: customization.degree_distribution(r["dataset"])),
    AnalysisSpec(
        "doc_vendor", inputs=("dataset",),
        fn=lambda r: customization.doc_vendor_all(r["dataset"])),
    AnalysisSpec(
        "doc_device", inputs=("dataset",),
        fn=lambda r: customization.doc_device_all(r["dataset"])),
    AnalysisSpec(
        "heterogeneity", inputs=("dataset",),
        fn=lambda r: customization.top_vendor_heterogeneity(
            r["dataset"])),
    AnalysisSpec(
        "vulnerability", inputs=("dataset",),
        fn=lambda r: security.vulnerability_report(r["dataset"])),
    AnalysisSpec(
        "jaccard", inputs=("dataset",), provides=("jaccard_pairs",),
        fn=lambda r: sharing.vendor_similarity_pairs(r["dataset"])),
    AnalysisSpec(
        "server_proxy", inputs=("dataset", "corpus"),
        provides=("server_tie_fraction", "server_ties"),
        fn=lambda r: sharing.server_specific_fingerprints(r["dataset"],
                                                          r["corpus"])),
    AnalysisSpec(
        "semantics", inputs=("dataset", "corpus"),
        provides=("semantic_summary",),
        fn=lambda r: semantics.semantic_summary(
            semantics.semantic_fingerprinting(r["dataset"],
                                              r["corpus"]))),
    AnalysisSpec(
        "versions", inputs=("dataset",),
        fn=lambda r: params.version_proposals(r["dataset"])),
    AnalysisSpec(
        "fallback", inputs=("dataset",),
        fn=lambda r: params.fallback_scsv_usage(r["dataset"])),
    AnalysisSpec(
        "ocsp", inputs=("dataset",),
        fn=lambda r: params.ocsp_usage(r["dataset"])),
    AnalysisSpec(
        "grease", inputs=("dataset",),
        fn=lambda r: params.grease_usage(r["dataset"])),
    AnalysisSpec(
        "lowest_vulnerable_index", inputs=("dataset",),
        fn=lambda r: preferences.lowest_vulnerable_index(r["dataset"])),
    AnalysisSpec(
        "clean_vendors", inputs=("dataset",),
        fn=lambda r: preferences.vendors_without_vulnerable(
            r["dataset"])),
    AnalysisSpec(
        "preferred_components", inputs=("dataset",),
        fn=lambda r: preferences.preferred_components(r["dataset"])),
    AnalysisSpec(
        "ml_attribution",
        inputs=("dataset", "corpus", "world", "config"),
        fn=_ml_attribution),
)

#: Section 5 + Appendix C (server-side) analyses.  ``survey`` is itself
#: a node: validation runs once and everything downstream depends on it.
SERVER_ANALYSES = (
    AnalysisSpec(
        "probe_stats", inputs=("certificates",),
        fn=lambda r: (r["certificates"].stats.to_json()
                      if r["certificates"].stats is not None else None)),
    AnalysisSpec(
        "issuers", inputs=("dataset", "certificates", "ecosystem"),
        fn=lambda r: issuers.issuer_report(r["dataset"],
                                           r["certificates"],
                                           r["ecosystem"])),
    AnalysisSpec(
        "survey", inputs=("certificates", "validator"),
        span="validate.chain",
        fn=lambda r: chains.validate_all(r["certificates"],
                                         r["validator"], at=PROBE_TIME),
        tally=lambda span, survey: span.incr("chains",
                                             len(survey.reports))),
    AnalysisSpec(
        "validation_failures",
        inputs=("survey", "dataset", "ecosystem"),
        fn=lambda r: chains.validation_failure_rows(
            r["survey"], r["dataset"], r["ecosystem"])),
    AnalysisSpec(
        "private_issuers", inputs=("survey", "dataset", "ecosystem"),
        provides=("private_issuer_rows",),
        fn=lambda r: chains.private_issuer_rows(
            r["survey"], r["dataset"], r["ecosystem"])),
    AnalysisSpec(
        "expired", inputs=("certificates", "dataset"),
        fn=lambda r: chains.expired_rows(r["certificates"],
                                         r["dataset"])),
    AnalysisSpec(
        "ct",
        inputs=("dataset", "certificates", "survey", "ecosystem",
                "ct_logs"),
        fn=lambda r: ct_validity.ct_report(
            r["dataset"], r["certificates"], r["survey"],
            r["ecosystem"], r["ct_logs"])),
    AnalysisSpec(
        "netflix", inputs=("certificates", "ct_logs"),
        fn=lambda r: ct_validity.netflix_rows(r["certificates"],
                                              r["ct_logs"])),
    AnalysisSpec(
        "ct_private_figure", inputs=("survey", "ecosystem", "ct_logs"),
        fn=lambda r: ct_validity.private_chain_ct_figure(
            r["survey"], r["ecosystem"], r["ct_logs"])),
    AnalysisSpec(
        "slds", inputs=("dataset", "certificates"),
        provides=("slds", "sld_stats"),
        fn=lambda r: (lambda rows: (rows, slds.sld_statistics(rows)))(
            slds.sld_rows(r["dataset"], r["certificates"]))),
    AnalysisSpec(
        "geo", inputs=("certificates",),
        fn=lambda r: geo.geo_comparison(r["certificates"])),
    AnalysisSpec(
        "lab", inputs=("dataset", "certificates", "network"),
        fn=lambda r: labcompare.lab_comparison(
            r["dataset"], r["certificates"], r["network"])),
)


def _scheduler(specs, side, study, jobs, store, node_observer=None):
    if jobs is None:
        jobs = study.config.probe_jobs
    if store is None:
        store = getattr(study, "store", None)
    return AnalysisScheduler(specs, side=side, jobs=jobs, store=store,
                             config=study.config,
                             node_observer=node_observer)


def run_client_side(study, jobs=None, store=None, node_observer=None):
    """Section 4 + Appendix B analyses.

    ``jobs`` defaults to the study config's worker count; ``store``
    defaults to the study's attached artifact store (if any).
    ``node_observer`` (see :class:`AnalysisScheduler`) lets the
    conformance harness watch every node's packed result.
    """
    with obs.span("analysis.client") as side_span:
        scheduler = _scheduler(CLIENT_ANALYSES, "client", study, jobs,
                               store, node_observer)
        results = scheduler.run({
            "dataset": lambda: study.dataset,
            "corpus": lambda: study.corpus,
            "world": lambda: study.world,
            "config": lambda: study.config,
        })
        side_span.incr("analyses", len(results))
    return results


def run_server_side(study, jobs=None, store=None, node_observer=None):
    """Section 5 + Appendix C analyses."""
    with obs.span("analysis.server") as side_span:
        scheduler = _scheduler(SERVER_ANALYSES, "server", study, jobs,
                               store, node_observer)
        results = scheduler.run({
            "dataset": lambda: study.dataset,
            "certificates": lambda: study.certificates,
            "ecosystem": lambda: study.ecosystem,
            "network": lambda: study.network,
            "ct_logs": lambda: study.network.ct_logs,
            "validator": lambda: study.validator(),
        })
        side_span.incr("analyses", len(results))
    return results


def run_full_study(study, jobs=None, store=None, node_observer=None):
    """Everything, in paper order."""
    with obs.span("analysis.full_study"):
        return {
            "client": run_client_side(study, jobs=jobs, store=store,
                                      node_observer=node_observer),
            "server": run_server_side(study, jobs=jobs, store=store,
                                      node_observer=node_observer),
        }


def analysis_stage_names():
    """Every scheduler stage name, in registry (paper) order.

    The conformance harness orders baseline nodes and equivalence
    reports by this sequence, so "first divergent node" always means
    first in paper order, not first alphabetically.
    """
    return tuple([f"analysis.client.{spec.name}"
                  for spec in CLIENT_ANALYSES]
                 + [f"analysis.server.{spec.name}"
                    for spec in SERVER_ANALYSES])
