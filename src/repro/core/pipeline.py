"""One-call orchestration of the full study.

``run_full_study`` executes every analysis in paper order and returns a
nested dict of results — the programmatic equivalent of regenerating all
tables and figures.  Examples and the integration tests drive this.

Every analysis runs inside its own ``repro.obs`` span
(``analysis.client.<name>`` / ``analysis.server.<name>``), so a traced
run (``repro report --trace trace.jsonl``) shows exactly where the
pipeline's time goes, stage by stage — the before/after story every
later optimization PR builds on.  With observability disabled (the
default) the spans are no-ops.
"""

from repro import obs
from repro.core import (
    chains,
    ct_validity,
    customization,
    geo,
    issuers,
    labcompare,
    matching,
    params,
    preferences,
    security,
    semantics,
    sharing,
    slds,
)
from repro.inspector.timeline import PROBE_TIME


def _staged(side, results):
    """A stage runner: ``stage(name, thunk)`` spans and stores one
    analysis, counting it on the enclosing side's span."""
    def stage(name, thunk, key=None):
        with obs.span(f"analysis.{side}.{name}"):
            results[key or name] = thunk()
    return stage


def run_client_side(study):
    """Section 4 + Appendix B analyses."""
    with obs.span("analysis.client") as side_span:
        dataset, corpus = study.dataset, study.corpus
        results = {}
        stage = _staged("client", results)
        stage("matching",
              lambda: matching.match_against_corpus(dataset, corpus))
        stage("degree_distribution",
              lambda: customization.degree_distribution(dataset))
        stage("doc_vendor", lambda: customization.doc_vendor_all(dataset))
        stage("doc_device", lambda: customization.doc_device_all(dataset))
        stage("heterogeneity",
              lambda: customization.top_vendor_heterogeneity(dataset))
        stage("vulnerability",
              lambda: security.vulnerability_report(dataset))
        stage("jaccard",
              lambda: sharing.vendor_similarity_pairs(dataset),
              key="jaccard_pairs")
        with obs.span("analysis.client.server_proxy"):
            tie_fraction, ties = sharing.server_specific_fingerprints(
                dataset, corpus)
            results["server_tie_fraction"] = tie_fraction
            results["server_ties"] = ties
        with obs.span("analysis.client.semantics"):
            semantic = semantics.semantic_fingerprinting(dataset, corpus)
            results["semantic_summary"] = semantics.semantic_summary(
                semantic)
        stage("versions", lambda: params.version_proposals(dataset))
        stage("fallback", lambda: params.fallback_scsv_usage(dataset))
        stage("ocsp", lambda: params.ocsp_usage(dataset))
        stage("grease", lambda: params.grease_usage(dataset))
        stage("lowest_vulnerable_index",
              lambda: preferences.lowest_vulnerable_index(dataset))
        stage("clean_vendors",
              lambda: preferences.vendors_without_vulnerable(dataset))
        stage("preferred_components",
              lambda: preferences.preferred_components(dataset))
        side_span.incr("analyses", len(results))
    return results


def run_server_side(study):
    """Section 5 + Appendix C analyses."""
    with obs.span("analysis.server") as side_span:
        dataset = study.dataset
        certificates = study.certificates
        ecosystem = study.ecosystem
        validator = study.validator()
        with obs.span("validate.chain") as span:
            survey = chains.validate_all(certificates, validator,
                                         at=PROBE_TIME)
            span.incr("chains", len(survey.reports))
        results = {
            "probe_stats": (certificates.stats.to_json()
                            if certificates.stats is not None else None),
            "survey": survey,
        }
        stage = _staged("server", results)
        stage("issuers",
              lambda: issuers.issuer_report(dataset, certificates,
                                            ecosystem))
        stage("validation_failures",
              lambda: chains.validation_failure_rows(survey, dataset,
                                                     ecosystem))
        stage("private_issuers",
              lambda: chains.private_issuer_rows(survey, dataset,
                                                 ecosystem),
              key="private_issuer_rows")
        stage("expired", lambda: chains.expired_rows(certificates,
                                                     dataset))
        stage("ct",
              lambda: ct_validity.ct_report(dataset, certificates,
                                            survey, ecosystem,
                                            study.network.ct_logs))
        stage("netflix",
              lambda: ct_validity.netflix_rows(certificates,
                                               study.network.ct_logs))
        stage("ct_private_figure",
              lambda: ct_validity.private_chain_ct_figure(
                  survey, ecosystem, study.network.ct_logs))
        with obs.span("analysis.server.slds"):
            sld_rows = slds.sld_rows(dataset, certificates)
            results["slds"] = sld_rows
            results["sld_stats"] = slds.sld_statistics(sld_rows)
        stage("geo", lambda: geo.geo_comparison(certificates))
        stage("lab",
              lambda: labcompare.lab_comparison(dataset, certificates,
                                                study.network))
        side_span.incr("analyses", len(results))
    return {key: results[key] for key in (
        "probe_stats", "issuers", "survey", "validation_failures",
        "private_issuer_rows", "expired", "ct", "netflix",
        "ct_private_figure", "slds", "sld_stats", "geo", "lab")}


def run_full_study(study):
    """Everything, in paper order."""
    with obs.span("analysis.full_study"):
        return {
            "client": run_client_side(study),
            "server": run_server_side(study),
        }
