"""Section 5.2 — certificate issuers (Figure 5, Table 6).

Categorizes leaf-certificate issuers into public-trust CAs and private
CAs (CCADB-style, via the authority ecosystem), builds the issuer×vendor
matrix behind Figure 5, and computes the headline numbers: DigiCert's
47.26% share, private CAs at 9.86%, the 16 self-signing vendors, and the
three vendors (Canary, Tuya, Obihai) whose devices *only* see
vendor-signed certificates.
"""

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.inspector.generator import PRIVATE_CA_ORGS


def leaf_issuer_org(leaf):
    """The issuer organization of a leaf (falls back to the issuer CN)."""
    return leaf.issuer.organization or leaf.issuer.common_name


@dataclass
class IssuerReport:
    """Results of the issuer analysis."""

    server_count: int
    leaf_count: int
    issuer_orgs: list
    public_orgs: list
    private_orgs: list
    issuer_leaf_counts: Counter
    #: vendor → issuer org → number of (device, server) visit pairs.
    matrix: dict = field(default_factory=dict)

    @property
    def issuer_org_count(self):
        return len(self.issuer_orgs)

    def issuer_share(self, org):
        return self.issuer_leaf_counts[org] / max(1, self.leaf_count)

    def private_leaf_share(self):
        private = sum(self.issuer_leaf_counts[org]
                      for org in self.private_orgs)
        return private / max(1, self.leaf_count)

    def vendor_issuer_ratios(self, vendor):
        """One Figure 5 column: issuer → visit ratio for a vendor."""
        column = self.matrix.get(vendor, Counter())
        total = sum(column.values())
        if not total:
            return {}
        return {org: count / total for org, count in column.items()}

    def vendors_public_only(self):
        """Vendors whose devices only see public-trust issuers."""
        out = []
        for vendor, column in self.matrix.items():
            if column and all(org in set(self.public_orgs)
                              for org in column):
                out.append(vendor)
        return sorted(out)

    def vendors_self_signing(self):
        """Vendors whose own private CA signs servers their devices visit."""
        out = []
        for vendor, column in self.matrix.items():
            own_org = PRIVATE_CA_ORGS.get(vendor)
            if own_org and column.get(own_org):
                out.append(vendor)
        return sorted(out)

    def vendors_exclusively_self_signed(self):
        """Vendors whose devices see *only* their own CA (Canary/Tuya/Obihai)."""
        out = []
        for vendor in self.vendors_self_signing():
            column = self.matrix[vendor]
            own_org = PRIVATE_CA_ORGS[vendor]
            if set(column) == {own_org}:
                out.append(vendor)
        return sorted(out)


def issuer_report(dataset, certificates, ecosystem):
    """Run the Section 5.2 analysis.

    Args:
        dataset: the ClientHello capture (for device→server attribution).
        certificates: the probed certificate dataset.
        ecosystem: the authority ecosystem (CCADB stand-in).
    """
    results = certificates.results_at()
    leaves = certificates.leaf_certificates()
    issuer_counts = Counter(leaf_issuer_org(leaf) for leaf in leaves.values())
    orgs = sorted(issuer_counts)
    public = [org for org in orgs if ecosystem.is_public_trust(org)]
    private = [org for org in orgs if not ecosystem.is_public_trust(org)]
    matrix = defaultdict(Counter)
    for sni in dataset.snis():
        result = results.get(sni)
        if result is None or result.leaf is None:
            continue
        org = leaf_issuer_org(result.leaf)
        for device in dataset.sni_devices(sni):
            matrix[dataset.device_vendor(device)][org] += 1
    return IssuerReport(
        server_count=len(certificates.reachable_fqdns()),
        leaf_count=len(leaves),
        issuer_orgs=orgs, public_orgs=public, private_orgs=private,
        issuer_leaf_counts=issuer_counts, matrix=dict(matrix))
