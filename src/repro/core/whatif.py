"""What-if experiments on the paper's recommendations and design choices.

The paper's Discussion section makes recommendations it cannot evaluate
on the real Internet; our simulator can:

- :func:`acme_adoption` — what happens to the validity/CT picture when
  the private vendor CAs adopt ACME automation (Section 5.4's explicit
  recommendation)?
- :func:`aia_chasing` — how much of Table 7 is an artifact of
  Zeek/OpenSSL not fetching intermediates (AIA), and how much is real
  trust failure?
- :func:`trust_store_choice` — does validating against a single store
  instead of the Mozilla+Apple+Microsoft union change any verdicts?
- :func:`revocation_exposure` — after a simulated key compromise, which
  populations of devices can actually learn about the revocation?
- :func:`fingerprint_definition` — how do the study's headline numbers
  move under alternative fingerprint definitions (suites-only,
  suites+version, the 3-tuple, JA3)?
"""

from collections import Counter, defaultdict

from repro.core.issuers import leaf_issuer_org
from repro.inspector.stacks import stable_rng
from repro.inspector.timeline import PROBE_TIME
from repro.tlslib.ja3 import ja3_hash
from repro.x509.acme import ACMEClient, ACMEServer, WellKnownStore
from repro.x509.revocation import RevocationAuthority
from repro.x509.validation import ChainValidator


def acme_adoption(study, validity_days=90):
    """Re-issue every private-CA leaf through ACME automation.

    Returns before/after statistics: validity period distribution and CT
    coverage for the vendor-signed population.
    """
    certificates = study.certificates
    ecosystem = study.ecosystem
    results = certificates.results_at()
    private_leafs = {}
    for fqdn, result in results.items():
        if result.leaf is None:
            continue
        org = leaf_issuer_org(result.leaf)
        if not ecosystem.is_public_trust(org):
            private_leafs.setdefault(org, {})[fqdn] = result.leaf

    before_validities, before_ct = [], 0
    total = 0
    for org, leafs in private_leafs.items():
        for leaf in leafs.values():
            total += 1
            before_validities.append(leaf.validity_days)
            if study.network.ct_logs.query(leaf):
                before_ct += 1

    # Each vendor CA fronts itself with an ACME endpoint; its operators
    # enroll every FQDN.  Issuance still comes from the same (private) CA
    # — ACME fixes rotation and logging, not trust anchoring.
    well_known = WellKnownStore()
    after_validities, after_ct = [], 0
    for org, leafs in sorted(private_leafs.items()):
        ca = ecosystem.issuer(org if org != "Netflix" else "Netflix")
        server = ACMEServer(ca, well_known, ct_logs=study.network.ct_logs,
                            validity_days=validity_days)
        client = ACMEClient(server, well_known, contact=f"ops@{org}",
                            rng=stable_rng(study.seed, "acme", org))
        for fqdn in sorted(leafs):
            leaf = client.obtain([fqdn], now=PROBE_TIME)
            after_validities.append(leaf.validity_days)
            if study.network.ct_logs.query(leaf):
                after_ct += 1

    def summarize(values):
        values = sorted(values)
        if not values:
            return (0, 0, 0)
        return (values[0], values[len(values) // 2], values[-1])

    return {
        "private_leaf_count": total,
        "before": {"validity_min_med_max": summarize(before_validities),
                   "ct_share": before_ct / max(1, total)},
        "after": {"validity_min_med_max": summarize(after_validities),
                  "ct_share": after_ct / max(1, total)},
    }


def aia_chasing(study, certificates=None):
    """Revalidate every probed chain with AIA chasing enabled.

    Returns the status histogram with and without chasing, plus the list
    of FQDNs whose verdict flips to OK — separating "fixable by fetching
    the intermediate" failures from genuine trust failures.
    """
    certificates = certificates or study.certificates
    strict = ChainValidator(study.ecosystem.union_store)
    chasing = ChainValidator(study.ecosystem.union_store,
                             intermediate_resolver=
                             study.ecosystem.aia_resolver())
    before, after = Counter(), Counter()
    fixed = []
    for fqdn, result in certificates.results_at().items():
        if not result.chain:
            continue
        strict_report = strict.validate(result.chain, at=PROBE_TIME,
                                        hostname=fqdn)
        chasing_report = chasing.validate(result.chain, at=PROBE_TIME,
                                          hostname=fqdn)
        before[strict_report.status] += 1
        after[chasing_report.status] += 1
        if strict_report.status != chasing_report.status \
                and chasing_report.valid:
            fixed.append(fqdn)
    return {"before": dict(before), "after": dict(after),
            "fixed_by_aia": sorted(fixed)}


def trust_store_choice(study, certificates=None):
    """Validate against each single store and the union.

    The modelled stores are aligned (the paper found the union necessary
    because real programs diverge slightly); the experiment verifies the
    pipeline is store-parametric and reports per-store verdicts.
    """
    certificates = certificates or study.certificates
    stores = dict(study.ecosystem.stores)
    stores["union"] = study.ecosystem.union_store
    histograms = {}
    for name, store in stores.items():
        validator = ChainValidator(store)
        counts = Counter()
        for fqdn, result in certificates.results_at().items():
            if not result.chain:
                continue
            counts[validator.validate(result.chain, at=PROBE_TIME,
                                      hostname=fqdn).status] += 1
        histograms[name] = dict(counts)
    return histograms


def revocation_exposure(study, compromised_share=0.05):
    """Simulate key compromises and measure who can learn about them.

    A deterministic sample of leafs is revoked at probe time.  Public-CA
    leafs have a responder whose staples clients can verify; private
    vendor CAs ship no revocation infrastructure at all (the paper's
    "once compromised ... may open the door to attackers"), so every
    device that keeps trusting the pinned root stays exposed.
    """
    rng = stable_rng(study.seed, "revocation")
    certificates = study.certificates
    dataset = study.dataset
    ecosystem = study.ecosystem
    results = certificates.results_at()
    authorities = {}
    exposed_devices, protected_devices = set(), set()
    revoked = {"public": 0, "private": 0}
    fqdns = sorted(f for f, r in results.items() if r.leaf is not None)
    sample = rng.sample(fqdns, max(1, int(len(fqdns) * compromised_share)))
    for fqdn in sample:
        leaf = results[fqdn].leaf
        org = leaf_issuer_org(leaf)
        devices = dataset.sni_devices(fqdn)
        if ecosystem.is_public_trust(org):
            authority = authorities.setdefault(
                org, RevocationAuthority(ecosystem.issuer(org)))
            authority.revoke(leaf, at=PROBE_TIME)
            revoked["public"] += 1
            protected_devices.update(devices)
        else:
            # No CRL distribution point, no OCSP responder, no CT trail:
            # the devices cannot learn the certificate is compromised.
            revoked["private"] += 1
            exposed_devices.update(devices)
    return {
        "revoked_leafs": revoked,
        "devices_protected_by_revocation": len(protected_devices
                                               - exposed_devices),
        "devices_exposed_no_revocation_path": len(exposed_devices),
    }


def fingerprint_definition(dataset):
    """Headline metrics under alternative fingerprint definitions."""
    definitions = {
        "suites_only": lambda r: (tuple(r.ciphersuites),),
        "suites+version": lambda r: (int(r.tls_version),
                                     tuple(r.ciphersuites)),
        "3-tuple (paper)": lambda r: r.fingerprint(),
        "ja3": lambda r: (ja3_hash(r.tls_version, r.ciphersuites,
                                   r.extensions),),
    }
    out = {}
    for name, keyfn in definitions.items():
        vendors_by_fp = defaultdict(set)
        for record in dataset.records:
            vendors_by_fp[keyfn(record)].add(record.vendor)
        degree_one = sum(1 for vendors in vendors_by_fp.values()
                         if len(vendors) == 1)
        out[name] = {
            "fingerprints": len(vendors_by_fp),
            "degree_one_share": degree_one / max(1, len(vendors_by_fp)),
        }
    return out
