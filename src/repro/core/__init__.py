"""The paper's analyses (its primary contribution).

One module per analysis, mapping to the paper's sections:

===============================  ==========================================
Module                           Paper section
===============================  ==========================================
:mod:`repro.core.matching`       4.1  Matching fingerprints to libraries
:mod:`repro.core.security`       4.2  Ciphersuite security levels
:mod:`repro.core.customization`  4.2–4.3  DoC metrics, Tables 2–3
:mod:`repro.core.graphs`         Figures 1, 3, 4 (bipartite graphs)
:mod:`repro.core.sharing`        4.4  Jaccard similarity, Tables 4–5
:mod:`repro.core.semantics`      B.2  Semantics-aware fingerprinting
:mod:`repro.core.params`         B.3/B.9/B.10  Versions, extensions, GREASE
:mod:`repro.core.preferences`    B.7/B.8  Preference-order analyses
:mod:`repro.core.issuers`        5.2  Certificate issuers (Fig 5, Table 6)
:mod:`repro.core.chains`         5.3  Chain validation (Tables 7/8/14)
:mod:`repro.core.ct_validity`    5.4  CT and validity periods (Fig 6, T9)
:mod:`repro.core.geo`            C.4.1  Vantage comparison (Table 16)
:mod:`repro.core.labcompare`     C.4.2  Lab dataset cross-check
:mod:`repro.core.casestudies`    6  Smart TVs and local-network PKI
:mod:`repro.core.slds`           5.1/C.1  Server population (Table 15)
:mod:`repro.core.tables`         Text rendering of tables
:mod:`repro.core.pipeline`       One-call full study
===============================  ==========================================
"""
