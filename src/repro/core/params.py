"""Appendix B.3 / B.9 / B.10 — TLS parameter analyses.

- Table 12: TLS versions proposed (no 1.3 in the capture; 26 devices
  still proposing SSL 3.0);
- FALLBACK_SCSV presence (20 devices, 6 vendors);
- extension usage relative to known libraries (session_ticket /
  renegotiation_info / padding / ALPN / NPN);
- OCSP ``status_request`` adoption (648 devices, 33 vendors);
- GREASE in suites (501 devices, 23 vendors) and extensions (503 devices,
  15 vendors).
"""

from collections import Counter, defaultdict

from repro.tlslib.ciphersuites import FALLBACK_SCSV
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.extensions import extension_name
from repro.tlslib.grease import contains_grease
from repro.tlslib.versions import TLSVersion


def version_proposals(dataset):
    """Table 12 — number of proposals (records) per TLS version."""
    counts = Counter()
    for record in dataset.records:
        counts[record.tls_version] += 1
    return {version: counts.get(version, 0)
            for version in sorted(TLSVersion, reverse=True)}


def ssl3_devices(dataset):
    """Devices (and their vendors) still proposing SSL 3.0."""
    devices = defaultdict(int)
    for record in dataset.records:
        if record.tls_version == TLSVersion.SSL_3_0:
            devices[record.device_id] += 1
    vendors = Counter(dataset.device_vendor(d) for d in devices)
    return dict(devices), dict(vendors)


def multi_version_devices(dataset):
    """Devices proposing more than one TLS version over the capture."""
    versions = defaultdict(set)
    for record in dataset.records:
        versions[record.device_id].add(record.tls_version)
    return sorted(d for d, vs in versions.items() if len(vs) > 1)


def fallback_scsv_usage(dataset):
    """Devices/vendors including TLS_FALLBACK_SCSV (Appendix B.3.1)."""
    devices = set()
    for record in dataset.records:
        if FALLBACK_SCSV in record.ciphersuites:
            devices.add(record.device_id)
    vendors = sorted({dataset.device_vendor(d) for d in devices})
    return sorted(devices), vendors


def ocsp_usage(dataset):
    """Devices/vendors including ``status_request`` (Appendix B.9)."""
    devices = set()
    for record in dataset.records:
        if int(Ext.STATUS_REQUEST) in record.extensions:
            devices.add(record.device_id)
    vendors = sorted({dataset.device_vendor(d) for d in devices})
    return sorted(devices), vendors


def grease_usage(dataset):
    """GREASE adoption (Appendix B.10).

    Returns a dict with devices/vendors using GREASE in ciphersuites, in
    extensions, and the devices GREASE-ing extensions only.
    """
    suite_devices, ext_devices = set(), set()
    for record in dataset.records:
        if contains_grease(record.ciphersuites):
            suite_devices.add(record.device_id)
        if contains_grease(record.extensions):
            ext_devices.add(record.device_id)
    return {
        "suite_devices": sorted(suite_devices),
        "suite_vendors": sorted({dataset.device_vendor(d)
                                 for d in suite_devices}),
        "extension_devices": sorted(ext_devices),
        "extension_vendors": sorted({dataset.device_vendor(d)
                                     for d in ext_devices}),
        "extension_only_devices": sorted(ext_devices - suite_devices),
    }


def extension_usage(dataset):
    """extension name → number of devices ever proposing it."""
    devices_by_ext = defaultdict(set)
    for record in dataset.records:
        for code in record.extensions:
            devices_by_ext[code].add(record.device_id)
    return {extension_name(code): len(devices)
            for code, devices in sorted(devices_by_ext.items())}


def extension_divergence(dataset, corpus):
    """Appendix B.3.3 — devices matching a library's suite list exactly but
    diverging in extensions; report which extensions account for it."""
    library_lists = {}
    for fingerprint in corpus:
        library_lists.setdefault(tuple(fingerprint.ciphersuites),
                                 set()).add(tuple(fingerprint.extensions))
    added, removed = Counter(), Counter()
    cases = 0
    seen = set()
    for record in dataset.records:
        key = (record.ciphersuites, record.extensions)
        if key in seen:
            continue
        seen.add(key)
        expected_sets = library_lists.get(tuple(record.ciphersuites))
        if not expected_sets:
            continue
        if tuple(record.extensions) in expected_sets:
            continue
        cases += 1
        observed = set(record.extensions)
        closest = min(expected_sets,
                      key=lambda exts: len(observed ^ set(exts)))
        for code in observed - set(closest):
            added[extension_name(code)] += 1
        for code in set(closest) - observed:
            removed[extension_name(code)] += 1
    return {"cases": cases, "added": dict(added), "removed": dict(removed)}
