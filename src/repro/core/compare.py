"""Compare two study runs (different seeds, or code revisions).

Used for the seed-stability ablation and for regression-checking a
calibrated world after generator changes: computes both studies' headline
metrics and their deltas, flagging any that moved outside a tolerance.
"""

from dataclasses import dataclass

from repro.core.customization import degree_distribution, doc_vendor_all
from repro.core.security import vulnerability_report
from repro.match import shared_engine


@dataclass(frozen=True)
class Headline:
    """One comparable metric: name, value, and its tolerance band."""

    name: str
    value: float
    tolerance: float


def client_headlines(dataset, corpus):
    """The headline client-side metrics with their stability tolerances."""
    match = shared_engine().match_report(dataset, corpus)
    degrees = degree_distribution(dataset)
    vulnerability = vulnerability_report(dataset)
    doc = list(doc_vendor_all(dataset).values())
    return [
        Headline("fingerprints", dataset.fingerprint_count, 120),
        Headline("library_match_share", match.matched_fraction, 0.02),
        Headline("degree_one_share", degrees["1"], 0.08),
        Headline("vulnerable_share",
                 vulnerability.vulnerable_fraction, 0.10),
        Headline("vendors_with_unique_fp",
                 sum(1 for v in doc if v > 0) / len(doc), 0.10),
        Headline("fully_unique_vendors",
                 sum(1 for v in doc if v == 1) / len(doc), 0.10),
    ]


@dataclass(frozen=True)
class HeadlineDelta:
    name: str
    baseline: float
    candidate: float
    tolerance: float

    @property
    def delta(self):
        return self.candidate - self.baseline

    @property
    def within_tolerance(self):
        return abs(self.delta) <= self.tolerance


def compare_headlines(baseline, candidate):
    """Pair up two headline lists; raises on mismatched metric sets."""
    base_by_name = {headline.name: headline for headline in baseline}
    cand_by_name = {headline.name: headline for headline in candidate}
    if set(base_by_name) != set(cand_by_name):
        raise ValueError("headline sets differ: "
                         f"{set(base_by_name) ^ set(cand_by_name)}")
    deltas = []
    for name in sorted(base_by_name):
        deltas.append(HeadlineDelta(
            name=name, baseline=base_by_name[name].value,
            candidate=cand_by_name[name].value,
            tolerance=base_by_name[name].tolerance))
    return deltas


def compare_datasets(dataset_a, dataset_b, corpus):
    """Full comparison of two captures; returns the delta list."""
    return compare_headlines(client_headlines(dataset_a, corpus),
                             client_headlines(dataset_b, corpus))


def drifted(deltas):
    """The deltas outside their tolerance band."""
    return [delta for delta in deltas if not delta.within_tolerance]
