"""Bipartite graph views of the capture (Figures 1, 3, and 4).

The paper visualizes vendors/devices against fingerprints as bipartite
graphs, coloring fingerprint nodes by vulnerability.  We build the same
graphs with networkx; benchmarks print their structural summaries (node
and edge counts, per-node security attributes, clusters) — the data a
plotting frontend would consume.
"""

import networkx as nx

from repro.core.security import (
    fingerprint_security_level,
    fingerprint_vulnerable_components,
)


def _fingerprint_attributes(dataset, fp):
    return {
        "bipartite": "fingerprint",
        "security": fingerprint_security_level(fp).pretty,
        "vulnerable_components": tuple(fingerprint_vulnerable_components(fp)),
        "device_count": len(dataset.fingerprint_devices(fp)),
    }


def vendor_fingerprint_graph(dataset):
    """Figure 1 — vendors × fingerprints.

    Vendor nodes carry their Table 13 index ordering (alphabetical rank
    here); fingerprint nodes carry security annotations.  Edges join a
    vendor to every fingerprint at least one of its devices uses.
    """
    graph = nx.Graph()
    for index, vendor in enumerate(dataset.vendor_names(), start=1):
        graph.add_node(("vendor", vendor), bipartite="vendor", index=index)
    for fp in dataset.fingerprints():
        graph.add_node(("fingerprint", fp),
                       **_fingerprint_attributes(dataset, fp))
        for vendor in dataset.fingerprint_vendors(fp):
            graph.add_edge(("vendor", vendor), ("fingerprint", fp))
    return graph


def device_type_fingerprint_graph(dataset, vendor):
    """Figure 3 — one vendor's device types × fingerprints."""
    graph = nx.Graph()
    type_fps = {}
    for device_id in dataset.devices_of_vendor(vendor):
        dtype = dataset.device_type(device_id)
        type_fps.setdefault(dtype, set()).update(
            dataset.device_fingerprints(device_id))
    for dtype, fps in type_fps.items():
        graph.add_node(("type", dtype), bipartite="type")
        for fp in fps:
            if ("fingerprint", fp) not in graph:
                graph.add_node(("fingerprint", fp),
                               **_fingerprint_attributes(dataset, fp))
            graph.add_edge(("type", dtype), ("fingerprint", fp))
    return graph


def device_fingerprint_graph(dataset, vendor, device_type=None):
    """Figure 4 — individual devices × fingerprints (e.g. Amazon Echos)."""
    graph = nx.Graph()
    for device_id in dataset.devices_of_vendor(vendor):
        if device_type is not None \
                and dataset.device_type(device_id) != device_type:
            continue
        graph.add_node(("device", device_id), bipartite="device")
        for fp in dataset.device_fingerprints(device_id):
            if ("fingerprint", fp) not in graph:
                graph.add_node(("fingerprint", fp),
                               **_fingerprint_attributes(dataset, fp))
            graph.add_edge(("device", device_id), ("fingerprint", fp))
    return graph


def exclusive_fingerprints_per_type(dataset, vendor):
    """Count fingerprints tied to exactly one device type (Figure 3's
    "180 fingerprints exclusively associated with one device type")."""
    fp_types = {}
    for device_id in dataset.devices_of_vendor(vendor):
        dtype = dataset.device_type(device_id)
        for fp in dataset.device_fingerprints(device_id):
            fp_types.setdefault(fp, set()).add(dtype)
    return sum(1 for types in fp_types.values() if len(types) == 1)


def graph_summary(graph):
    """Structural summary used by the figure benchmarks."""
    fingerprints = [n for n, d in graph.nodes(data=True)
                    if d.get("bipartite") == "fingerprint"]
    others = [n for n, d in graph.nodes(data=True)
              if d.get("bipartite") != "fingerprint"]
    by_security = {}
    for node in fingerprints:
        level = graph.nodes[node]["security"]
        by_security[level] = by_security.get(level, 0) + 1
    return {
        "fingerprint_nodes": len(fingerprints),
        "entity_nodes": len(others),
        "edges": graph.number_of_edges(),
        "components": nx.number_connected_components(graph),
        "fingerprints_by_security": dict(sorted(by_security.items())),
    }
