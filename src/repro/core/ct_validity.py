"""Section 5.4 — Certificate Transparency and validity periods.

Builds the {server, leaf certificate, device vendor} tuples of the
paper's CT dataset, queries the simulated CT logs for each leaf, and
produces:

- Figure 6: per vendor, the (validity period, chain category, CT
  presence) points — showing private-CA validity periods far beyond
  1,000 days and never logged;
- the 8 public-CA certificates missing from CT, by issuer;
- Table 9: Netflix's split validity profile;
- Figure 13: CT presence for leafs in private-issuer chains.
"""

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.issuers import leaf_issuer_org
from repro.x509.validation import ChainStatus

#: Figure 6 chain categories.
CATEGORY_PUBLIC = "public leaf and root"
CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT = "private leaf, public trust root"
CATEGORY_PRIVATE = "private leaf and root"


@dataclass(frozen=True)
class CTPoint:
    """One Figure 6 point: a {server, leaf, vendor} tuple."""

    fqdn: str
    vendor: str
    leaf_fingerprint: str
    issuer: str
    validity_days: float
    category: str
    in_ct: bool


@dataclass
class CTReport:
    points: list = field(default_factory=list)

    def tuple_count(self):
        return len(self.points)

    def by_vendor(self):
        grouped = defaultdict(list)
        for point in self.points:
            grouped[point.vendor].append(point)
        return dict(grouped)

    def public_ca_certs_missing_from_ct(self):
        """issuer → distinct public-CA leafs absent from CT (the 8)."""
        missing = defaultdict(set)
        for point in self.points:
            if point.category == CATEGORY_PUBLIC and not point.in_ct:
                missing[point.issuer].add(point.leaf_fingerprint)
        return {issuer: len(leafs)
                for issuer, leafs in sorted(missing.items())}

    def private_chained_certs_in_ct(self):
        """Distinct private-leaf/public-root leafs that *are* in CT.

        The paper finds zero: operators who could log never do.
        """
        logged = {point.leaf_fingerprint for point in self.points
                  if point.category == CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT
                  and point.in_ct}
        return len(logged)

    def validity_summary(self):
        """category → (min, median, max) validity days over distinct leafs."""
        by_category = defaultdict(dict)
        for point in self.points:
            by_category[point.category][point.leaf_fingerprint] = \
                point.validity_days
        summary = {}
        for category, leafs in by_category.items():
            values = sorted(leafs.values())
            summary[category] = (values[0], values[len(values) // 2],
                                 values[-1])
        return summary


def _category(report, ecosystem, leaf):
    issuer_org = leaf_issuer_org(leaf)
    if ecosystem.is_public_trust(issuer_org):
        return CATEGORY_PUBLIC
    if report.chain_complete and report.anchor_in_store:
        return CATEGORY_PRIVATE_LEAF_PUBLIC_ROOT
    return CATEGORY_PRIVATE


def ct_report(dataset, certificates, survey, ecosystem, ct_logs):
    """Assemble the CT dataset and query every leaf."""
    results = certificates.results_at()
    report = CTReport()
    ct_cache = {}
    for sni in dataset.snis():
        result = results.get(sni)
        validation = survey.reports.get(sni)
        if result is None or result.leaf is None or validation is None:
            continue
        leaf = result.leaf
        fingerprint = leaf.fingerprint()
        if fingerprint not in ct_cache:
            ct_cache[fingerprint] = ct_logs.query(leaf)
        category = _category(validation, ecosystem, leaf)
        for vendor in sorted({dataset.device_vendor(d)
                              for d in dataset.sni_devices(sni)}):
            report.points.append(CTPoint(
                fqdn=sni, vendor=vendor, leaf_fingerprint=fingerprint,
                issuer=leaf_issuer_org(leaf),
                validity_days=leaf.validity_days, category=category,
                in_ct=ct_cache[fingerprint]))
    return report


@dataclass(frozen=True)
class NetflixRow:
    """One Table 9 row."""

    leaf_issuer_cn: str
    validity_days: tuple
    topmost_issuer_cn: str
    cert_count: int
    in_ct: bool


def netflix_rows(certificates, ct_logs):
    """Table 9 — validity variance among Netflix-signed leafs."""
    groups = defaultdict(lambda: {"leafs": {}, "top": None, "ct": set()})
    results = certificates.results_at()
    for fqdn, result in results.items():
        leaf = result.leaf
        if leaf is None or leaf_issuer_org(leaf) != "Netflix":
            continue
        issuer_cn = leaf.issuer.common_name
        group = groups[issuer_cn]
        group["leafs"][leaf.fingerprint()] = round(leaf.validity_days)
        if result.chain:
            group["top"] = result.chain[-1].issuer.common_name
        if ct_logs.query(leaf):
            group["ct"].add(leaf.fingerprint())
    rows = []
    for issuer_cn, group in sorted(groups.items()):
        validities = tuple(sorted(set(group["leafs"].values())))
        rows.append(NetflixRow(
            leaf_issuer_cn=issuer_cn, validity_days=validities,
            topmost_issuer_cn=group["top"] or issuer_cn,
            cert_count=len(group["leafs"]), in_ct=bool(group["ct"])))
    rows.sort(key=lambda row: -max(row.validity_days))
    return rows


def private_chain_ct_figure(survey, ecosystem, ct_logs):
    """Figure 13 — CT presence for leafs in private-issuer chains."""
    counts = Counter()
    seen = set()
    for fqdn, report in survey.reports.items():
        if report.status not in (ChainStatus.UNTRUSTED_ROOT,
                                 ChainStatus.SELF_SIGNED,
                                 ChainStatus.INCOMPLETE_CHAIN,
                                 ChainStatus.EXPIRED):
            continue
        leaf = report.leaf
        fingerprint = leaf.fingerprint()
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        issuer_public = ecosystem.is_public_trust(leaf_issuer_org(leaf))
        in_ct = ct_logs.query(leaf)
        key = ("public" if issuer_public else "private",
               "in CT" if in_ct else "not in CT")
        counts[key] += 1
    return dict(counts)
