"""Appendix C.4.1 — certificate consistency across vantage points.

Compares the leaf certificates obtained from New York, Frankfurt, and
Singapore (Table 16): the bulk of SNIs serve one certificate everywhere;
a minority of CDN-backed hosts serve per-region variants.
"""

from dataclasses import dataclass, field


@dataclass
class GeoComparison:
    """Table 16 contents."""

    extracted: dict = field(default_factory=dict)   # vantage → #SNIs w/ cert
    shared_across_all: int = 0
    exclusive: dict = field(default_factory=dict)   # vantage → #SNIs w/ own cert
    differing_snis: list = field(default_factory=list)


def geo_comparison(certificates):
    """Cross-vantage certificate comparison."""
    vantages = certificates.vantages()
    per_vantage = {v: certificates.results_at(v) for v in vantages}
    comparison = GeoComparison()
    all_snis = set()
    for vantage, results in per_vantage.items():
        with_cert = {fqdn for fqdn, result in results.items()
                     if result.leaf is not None}
        comparison.extracted[vantage] = len(with_cert)
        all_snis.update(with_cert)
    for vantage in vantages:
        comparison.exclusive[vantage] = 0
    for sni in sorted(all_snis):
        fingerprints = {}
        for vantage in vantages:
            result = per_vantage[vantage].get(sni)
            if result is not None and result.leaf is not None:
                fingerprints[vantage] = result.leaf.fingerprint()
        if len(set(fingerprints.values())) == 1 \
                and len(fingerprints) == len(vantages):
            comparison.shared_across_all += 1
        else:
            comparison.differing_snis.append(sni)
            for vantage, fingerprint in fingerprints.items():
                others = {f for v, f in fingerprints.items() if v != vantage}
                if fingerprint not in others:
                    comparison.exclusive[vantage] += 1
    return comparison
