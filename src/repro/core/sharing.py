"""Section 4.4 — shared fingerprints across vendors.

Two analyses explain why non-standard fingerprints recur across vendors:

- **Jaccard vendor similarity** (Table 4): pairwise similarity of vendor
  fingerprint sets; high-similarity pairs expose shared supply chains
  (HDHomeRun/SiliconDust are one company, Sharp/TCL ship the same TV
  platform, ...).
- **Servers as a proxy for applications** (Table 5): SNIs tied to a
  *server-specific* fingerprint — devices only exhibit that fingerprint
  when talking to that server — reveal per-application TLS stacks; when
  the devices span multiple vendors, the application is a shared SDK.

Both analyses now execute on :class:`repro.match.MatchEngine` (exact or
sketch-accelerated, proven digest-identical); this module keeps the
result types (:class:`ServerFingerprintTie`, :func:`similarity_bands`)
and backwards-compatible free functions.  ``jaccard`` is deprecated —
its non-deprecated home is :func:`repro.match.set_jaccard`.
"""

import warnings
from dataclasses import dataclass


def jaccard(set_a, set_b):
    """Jaccard similarity of two sets (0 for two empty sets).  Deprecated.

    Use :func:`repro.match.set_jaccard` (same contract, non-deprecated)
    or :meth:`repro.match.FingerprintVector.jaccard` for the popcount
    fast path; this shim delegates and will be removed in a future
    release.
    """
    warnings.warn(
        "repro.core.sharing.jaccard is deprecated; use "
        "repro.match.set_jaccard (or FingerprintVector.jaccard)",
        DeprecationWarning, stacklevel=2)
    from repro.match.vector import set_jaccard
    return set_jaccard(set_a, set_b)


def vendor_similarity_pairs(dataset, threshold=0.2):
    """Table 4 — vendor pairs with Jaccard similarity ≥ ``threshold``.

    Returns a list of ``(similarity, vendor_a, vendor_b)`` sorted by
    similarity, descending.  Delegates to the process
    :class:`repro.match.MatchEngine` (mode-aware: exact by default,
    candidate-pruned under ``engine_mode("sketch")`` — results are
    byte-identical either way).
    """
    from repro.match.engine import shared_engine
    return shared_engine().vendor_similarity_pairs(dataset,
                                                   threshold=threshold)


def similarity_bands(pairs):
    """Group Table 4 pairs into the paper's similarity bands."""
    bands = {"1": [], "[0.7, 1)": [], "[0.4, 0.7)": [], "[0.3, 0.4)": [],
             "[0.2, 0.3)": []}
    for similarity, vendor_a, vendor_b in pairs:
        if similarity >= 1.0:
            bands["1"].append((vendor_a, vendor_b))
        elif similarity >= 0.7:
            bands["[0.7, 1)"].append((vendor_a, vendor_b))
        elif similarity >= 0.4:
            bands["[0.4, 0.7)"].append((vendor_a, vendor_b))
        elif similarity >= 0.3:
            bands["[0.3, 0.4)"].append((vendor_a, vendor_b))
        else:
            bands["[0.2, 0.3)"].append((vendor_a, vendor_b))
    return bands


@dataclass(frozen=True)
class ServerFingerprintTie:
    """One Table 5 row: a {second-level domain, fingerprint} tie."""

    sld: str
    fingerprint: tuple
    fqdn_count: int
    device_count: int
    vendors: tuple
    vulnerable_components: tuple


def server_specific_fingerprints(dataset, corpus=None):
    """Find SNIs tied to server-specific fingerprints (Section 4.4).

    A fingerprint is *server-specific* for an SNI when every device that
    exhibits it does so only toward that server's hosts.  Fingerprints
    matching known libraries are excluded (the paper's analysis targets
    non-standard stacks).

    Returns ``(fraction_of_snis_tied, ties)`` where ``ties`` covers ties
    involving devices of multiple vendors and at least two devices
    (Table 5's filtering), aggregated per {SLD, fingerprint}.  The
    algorithm body lives on :class:`repro.match.MatchEngine` (the
    corpus-match exclusion goes through the active mode's matcher).
    """
    from repro.match.engine import shared_engine
    return shared_engine().server_specific_fingerprints(dataset,
                                                        corpus=corpus)
