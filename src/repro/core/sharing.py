"""Section 4.4 — shared fingerprints across vendors.

Two analyses explain why non-standard fingerprints recur across vendors:

- **Jaccard vendor similarity** (Table 4): pairwise similarity of vendor
  fingerprint sets; high-similarity pairs expose shared supply chains
  (HDHomeRun/SiliconDust are one company, Sharp/TCL ship the same TV
  platform, ...).
- **Servers as a proxy for applications** (Table 5): SNIs tied to a
  *server-specific* fingerprint — devices only exhibit that fingerprint
  when talking to that server — reveal per-application TLS stacks; when
  the devices span multiple vendors, the application is a shared SDK.
"""

from collections import defaultdict
from dataclasses import dataclass
from itertools import combinations

from repro.core.security import fingerprint_vulnerable_components
from repro.x509.names import second_level_domain


def jaccard(set_a, set_b):
    """Jaccard similarity of two sets (0 for two empty sets)."""
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def vendor_similarity_pairs(dataset, threshold=0.2):
    """Table 4 — vendor pairs with Jaccard similarity ≥ ``threshold``.

    Returns a list of ``(similarity, vendor_a, vendor_b)`` sorted by
    similarity, descending.
    """
    vendors = dataset.vendor_names()
    fingerprint_sets = {v: dataset.vendor_fingerprints(v) for v in vendors}
    pairs = []
    for vendor_a, vendor_b in combinations(vendors, 2):
        similarity = jaccard(fingerprint_sets[vendor_a],
                             fingerprint_sets[vendor_b])
        if similarity >= threshold:
            pairs.append((similarity, vendor_a, vendor_b))
    pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
    return pairs


def similarity_bands(pairs):
    """Group Table 4 pairs into the paper's similarity bands."""
    bands = {"1": [], "[0.7, 1)": [], "[0.4, 0.7)": [], "[0.3, 0.4)": [],
             "[0.2, 0.3)": []}
    for similarity, vendor_a, vendor_b in pairs:
        if similarity >= 1.0:
            bands["1"].append((vendor_a, vendor_b))
        elif similarity >= 0.7:
            bands["[0.7, 1)"].append((vendor_a, vendor_b))
        elif similarity >= 0.4:
            bands["[0.4, 0.7)"].append((vendor_a, vendor_b))
        elif similarity >= 0.3:
            bands["[0.3, 0.4)"].append((vendor_a, vendor_b))
        else:
            bands["[0.2, 0.3)"].append((vendor_a, vendor_b))
    return bands


@dataclass(frozen=True)
class ServerFingerprintTie:
    """One Table 5 row: a {second-level domain, fingerprint} tie."""

    sld: str
    fingerprint: tuple
    fqdn_count: int
    device_count: int
    vendors: tuple
    vulnerable_components: tuple


def server_specific_fingerprints(dataset, corpus=None):
    """Find SNIs tied to server-specific fingerprints (Section 4.4).

    A fingerprint is *server-specific* for an SNI when every device that
    exhibits it does so only toward that server's hosts.  Fingerprints
    matching known libraries are excluded (the paper's analysis targets
    non-standard stacks).

    Returns ``(fraction_of_snis_tied, ties)`` where ``ties`` covers ties
    involving devices of multiple vendors and at least two devices
    (Table 5's filtering), aggregated per {SLD, fingerprint}.
    """
    # For each (device, fp): the set of SLDs it was seen toward.
    slds_by_device_fp = defaultdict(set)
    for record in dataset.records:
        if record.sni:
            slds_by_device_fp[(record.device_id, record.fingerprint())].add(
                second_level_domain(record.sni))
    tied_snis = set()
    # (sld, fp) → (set of fqdns, set of devices)
    aggregates = defaultdict(lambda: (set(), set()))
    total_snis = 0
    for sni in dataset.snis():
        total_snis += 1
        sld = second_level_domain(sni)
        for fp in dataset.sni_fingerprints(sni):
            if corpus is not None and corpus.match(*fp) is not None:
                continue
            devices = {d for d, f in dataset.sni_device_fingerprints(sni)
                       if f == fp}
            if not devices:
                continue
            # Server-specific: each such device uses fp only toward this
            # SLD, and multiple devices share the behaviour.
            if len(devices) >= 2 and all(
                    slds_by_device_fp[(d, fp)] == {sld} for d in devices):
                tied_snis.add(sni)
                fqdns, all_devices = aggregates[(sld, fp)]
                fqdns.add(sni)
                all_devices.update(devices)
    ties = []
    for (sld, fp), (fqdns, devices) in aggregates.items():
        if len(devices) < 2:
            continue  # exclude single-device outliers (paper's rule)
        vendors = tuple(sorted({dataset.device_vendor(d) for d in devices}))
        if len(vendors) < 2:
            continue  # Table 5 reports cross-vendor ties
        ties.append(ServerFingerprintTie(
            sld=sld, fingerprint=fp, fqdn_count=len(fqdns),
            device_count=len(devices), vendors=vendors,
            vulnerable_components=tuple(
                fingerprint_vulnerable_components(fp))))
    ties.sort(key=lambda tie: (-tie.device_count, tie.sld))
    fraction = len(tied_snis) / max(1, total_snis)
    return fraction, ties
