"""Section 5.3 — certificate chain validation (Tables 7, 8, 14).

Validates every probed chain Zeek-style against the union of the
Mozilla/Apple/Microsoft stores and groups the failures the way the paper
reports them:

- Table 7: chains that fail because the root is in neither the stores nor
  the presented chain (incomplete chains), grouped by {SLD, leaf issuer};
- Table 8: certificates already expired *during the capture window*;
- Table 14: chains with private issuers — complete chains to an untrusted
  root, and self-signed leafs;
- the CN-mismatch cases (``a2.tuyaus.com``).
"""

import time
from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.issuers import leaf_issuer_org
from repro.inspector.timeline import CAPTURE_END
from repro.x509.names import second_level_domain
from repro.x509.validation import ChainStatus


@dataclass(frozen=True)
class FailureRow:
    """One grouped failure row (Tables 7 / 14)."""

    domain: str
    fqdn_count: int
    leaf_issuer: str
    issuer_is_public: bool
    chain_lengths: tuple
    device_count: int
    vendors: tuple
    status: ChainStatus


@dataclass(frozen=True)
class ExpiredRow:
    """One Table 8 row."""

    domain: str
    not_after: int
    issuer: str
    device_count: int
    vendors: tuple

    def not_after_text(self):
        return time.strftime("%m/%d/%Y", time.gmtime(self.not_after))


@dataclass
class ValidationSurvey:
    """All validation outcomes, indexed for the three tables."""

    reports: dict = field(default_factory=dict)     # fqdn → report
    chains: dict = field(default_factory=dict)      # fqdn → presented chain

    def status_counts(self):
        counts = defaultdict(int)
        for report in self.reports.values():
            counts[report.status] += 1
        return dict(counts)

    def fqdns_with_status(self, *statuses):
        wanted = set(statuses)
        return sorted(f for f, r in self.reports.items()
                      if r.status in wanted)

    def cn_mismatches(self):
        return sorted(f for f, r in self.reports.items() if r.cn_mismatch)


def validate_all(certificates, validator, at):
    """Validate every reachable probed chain at time ``at``."""
    survey = ValidationSurvey()
    for fqdn, result in certificates.results_at().items():
        if not result.reachable or not result.chain:
            continue
        survey.reports[fqdn] = validator.validate(result.chain, at=at,
                                                  hostname=fqdn)
        survey.chains[fqdn] = result.chain
    return survey


def _group_rows(survey, dataset, ecosystem, fqdns, status_of):
    """Group failing FQDNs into {SLD, leaf issuer} rows."""
    groups = defaultdict(lambda: {"fqdns": set(), "lengths": set(),
                                  "devices": set(), "status": None})
    for fqdn in fqdns:
        report = survey.reports[fqdn]
        leaf = report.leaf
        key = (second_level_domain(fqdn), leaf_issuer_org(leaf))
        group = groups[key]
        group["fqdns"].add(fqdn)
        group["lengths"].add(report.presented_length)
        group["devices"].update(dataset.sni_devices(fqdn))
        group["status"] = status_of(report)
    rows = []
    for (domain, issuer), group in groups.items():
        vendors = tuple(sorted({dataset.device_vendor(d)
                                for d in group["devices"]}))
        rows.append(FailureRow(
            domain=domain, fqdn_count=len(group["fqdns"]),
            leaf_issuer=issuer,
            issuer_is_public=ecosystem.is_public_trust(issuer),
            chain_lengths=tuple(sorted(group["lengths"])),
            device_count=len(group["devices"]), vendors=vendors,
            status=group["status"]))
    rows.sort(key=lambda row: (-row.device_count, row.domain))
    return rows


def validation_failure_rows(survey, dataset, ecosystem):
    """Table 7 — incomplete chains (root absent from stores and chain)."""
    fqdns = survey.fqdns_with_status(ChainStatus.INCOMPLETE_CHAIN)
    return _group_rows(survey, dataset, ecosystem, fqdns,
                       lambda report: report.status)


def private_issuer_rows(survey, dataset, ecosystem):
    """Table 14 — chains with private issuers, split by status."""
    fqdns = survey.fqdns_with_status(ChainStatus.UNTRUSTED_ROOT,
                                     ChainStatus.SELF_SIGNED)
    return _group_rows(survey, dataset, ecosystem, fqdns,
                       lambda report: report.status)


def expired_rows(certificates, dataset, reference_time=CAPTURE_END):
    """Table 8 — leafs already expired by ``reference_time`` (the capture
    window's end: these certificates were expired while real devices were
    still connecting)."""
    groups = defaultdict(lambda: {"devices": set(), "not_after": None,
                                  "issuer": None})
    for fqdn, result in certificates.results_at().items():
        leaf = result.leaf
        if leaf is None or not leaf.is_expired(reference_time):
            continue
        domain = second_level_domain(fqdn)
        group = groups[domain]
        group["devices"].update(dataset.sni_devices(fqdn))
        group["not_after"] = leaf.not_after
        group["issuer"] = leaf_issuer_org(leaf)
    rows = []
    for domain, group in groups.items():
        vendors = tuple(sorted({dataset.device_vendor(d)
                                for d in group["devices"]}))
        rows.append(ExpiredRow(domain=domain, not_after=group["not_after"],
                               issuer=group["issuer"],
                               device_count=len(group["devices"]),
                               vendors=vendors))
    rows.sort(key=lambda row: row.domain)
    return rows


def private_leaf_incomplete_share(survey, ecosystem):
    """Share of private-CA leafs whose chains fail for a missing root
    (the paper's "45.78% of leaf certificates signed by private CAs")."""
    private_leafs, failing = set(), set()
    for fqdn, report in survey.reports.items():
        org = leaf_issuer_org(report.leaf)
        if ecosystem.is_public_trust(org):
            continue
        fingerprint = report.leaf.fingerprint()
        private_leafs.add(fingerprint)
        if report.status is ChainStatus.INCOMPLETE_CHAIN:
            failing.add(fingerprint)
    return len(failing) / max(1, len(private_leafs))
