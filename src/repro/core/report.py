"""Markdown study report generation.

Renders the full pipeline output (:func:`repro.core.pipeline.run_full_study`)
into a single self-contained markdown document — the study's "paper", with
every table in reproduction order.  Used by the CLI's ``report`` command.
"""

import time

from repro.core.tables import percent
from repro.x509.validation import ChainStatus


def _md_table(headers, rows):
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _section_client(client):
    parts = ["## Client-side TLS (Section 4)\n"]
    match = client["matching"]
    parts.append(
        f"- distinct fingerprints: **{match.total_fingerprints}**; "
        f"matched to known libraries: **{match.matched_count}** "
        f"({percent(match.matched_fraction)}); "
        f"{len(match.unsupported_libraries())} of "
        f"{len(match.matched_libraries())} matched libraries were "
        "unsupported as of 2020.")
    degrees = client["degree_distribution"]
    parts.append("\n### Fingerprint degree distribution (Table 2)\n")
    parts.append(_md_table(
        ["degree", "share"],
        [[bucket, percent(share)] for bucket, share in degrees.items()]))
    parts.append("\n### Heterogeneity across devices (Table 3)\n")
    parts.append(_md_table(
        ["vendor", "#fingerprints", "shared by ≥10 devices",
         "used by 1 device"],
        [[row.vendor, row.fingerprint_count,
          percent(row.shared_by_10_or_more),
          percent(row.used_by_one_device)]
         for row in client["heterogeneity"]]))
    vuln = client["vulnerability"]
    parts.append(
        f"\n### Vulnerabilities (Section 4.2)\n\n"
        f"- {vuln.vulnerable_fingerprints} fingerprints "
        f"({percent(vuln.vulnerable_fraction)}) contain a vulnerable "
        f"component; 3DES appears in "
        f"{percent(vuln.component_fraction('3DES'))}.\n"
        f"- severe (anon/export/NULL) suites: "
        f"{vuln.severe_fingerprints} fingerprints on "
        f"{len(vuln.severe_devices)} devices of "
        f"{len(vuln.severe_vendors)} vendors.")
    parts.append("\n### Cross-vendor sharing (Table 4/5)\n")
    parts.append(_md_table(
        ["Jaccard", "vendor pair"],
        [[f"{s:.2f}", f"{a} / {b}"]
         for s, a, b in client["jaccard_pairs"][:12]]))
    parts.append(
        f"\n{percent(client['server_tie_fraction'])} of SNIs are tied to "
        "server-specific fingerprints; cross-vendor ties:\n")
    parts.append(_md_table(
        ["domain", "#devices", "vendors"],
        [[tie.sld, tie.device_count, ", ".join(tie.vendors)]
         for tie in client["server_ties"][:10]]))
    parts.append("\n### Semantics-aware matching (Table 11)\n")
    parts.append(_md_table(
        ["category", "share", "#vendors"],
        [[category, percent(data["share"]), data["vendors"]]
         for category, data in client["semantic_summary"].items()]))
    versions = client["versions"]
    parts.append("\n### TLS versions (Table 12)\n")
    parts.append(_md_table(
        ["version", "proposals"],
        [[version.pretty, count] for version, count in versions.items()]))
    ml = client.get("ml_attribution")
    if ml:
        coverage = ml["coverage"]
        parts.append("\n### Learned attribution (beyond the paper)\n")
        parts.append(
            f"- ground truth from the generator labels "
            f"**{ml['examples']['labeled']}** fingerprints "
            f"({ml['examples']['train']} train / "
            f"{ml['examples']['test']} held-out); exact matching "
            f"covers only {percent(ml['exact_match_rate'])}.\n"
            f"- one-vs-rest logistic regression "
            f"({ml['params']['iters']} fixed iterations): held-out "
            f"accuracy **{percent(ml['accuracy'])}**, macro-F1 "
            f"**{ml['macro']['f1']:.3f}** (naive Bayes baseline "
            f"{ml['baseline_nb']['macro_f1']:.3f}).\n"
            f"- attribution coverage at confidence ≥ "
            f"{coverage['threshold']}: "
            f"**{percent(coverage['attribution_coverage'])}** of "
            f"{coverage['unmatched']} unmatched fingerprints — "
            f"{coverage['coverage_gain']:.1f}x the exact-match rate, "
            f"at {percent(coverage['heldout_unmatched_accuracy'])} "
            f"held-out accuracy on confident calls.")
        parts.append("")
        parts.append(_md_table(
            ["class", "precision", "recall", "F1", "support"],
            [[label, f"{row['precision']:.3f}", f"{row['recall']:.3f}",
              f"{row['f1']:.3f}", row["support"]]
             for label, row in sorted(ml["per_class"].items())]))
    return "\n".join(parts)


def _section_server(server):
    parts = ["\n## Server-side PKI (Section 5)\n"]
    issuers = server["issuers"]
    parts.append(
        f"- {issuers.server_count} servers presented "
        f"{issuers.leaf_count} distinct leaf certificates from "
        f"{issuers.issuer_org_count} issuer organizations.\n"
        f"- DigiCert share: {percent(issuers.issuer_share('DigiCert'))}; "
        f"private CAs: {percent(issuers.private_leaf_share())}.\n"
        f"- vendors signing their own servers: "
        f"{', '.join(issuers.vendors_self_signing())}.\n"
        f"- exclusively vendor-signed: "
        f"{', '.join(issuers.vendors_exclusively_self_signed())}.")
    counts = server["survey"].status_counts()
    parts.append("\n### Chain validation (Section 5.3)\n")
    parts.append(_md_table(
        ["status", "#servers"],
        [[status.value, counts[status]]
         for status in sorted(counts, key=lambda s: -counts[s])]))
    parts.append("\n### Validation failures (Table 7)\n")
    parts.append(_md_table(
        ["domain", "#FQDNs", "issuer", "#devices"],
        [[row.domain, row.fqdn_count, row.leaf_issuer, row.device_count]
         for row in server["validation_failures"]]))
    parts.append("\n### Expired during capture (Table 8)\n")
    parts.append(_md_table(
        ["domain", "not after", "issuer", "vendors"],
        [[row.domain, row.not_after_text(), row.issuer,
          ", ".join(row.vendors)] for row in server["expired"]]))
    parts.append("\n### Private issuers (Table 14)\n")
    parts.append(_md_table(
        ["status", "domain", "#FQDNs", "issuer"],
        [["self-signed" if row.status is ChainStatus.SELF_SIGNED
          else "private root", row.domain, row.fqdn_count,
          row.leaf_issuer] for row in server["private_issuer_rows"]]))
    ct = server["ct"]
    parts.append(
        f"\n### CT and validity (Section 5.4)\n\n"
        f"- {ct.tuple_count()} {{server, leaf, vendor}} tuples.\n"
        f"- public-CA certs missing from CT: "
        f"{ct.public_ca_certs_missing_from_ct()}.\n"
        f"- private-leaf/public-root certs logged: "
        f"{ct.private_chained_certs_in_ct()}.")
    parts.append("\n### Netflix (Table 9)\n")
    parts.append(_md_table(
        ["leaf issuer", "validity days", "#certs", "in CT"],
        [[row.leaf_issuer_cn,
          ",".join(str(v) for v in row.validity_days),
          row.cert_count, row.in_ct] for row in server["netflix"]]))
    stats = server["sld_stats"]
    parts.append(
        f"\n### Server population (Table 15)\n\n"
        f"- {stats['sld_count']} SLDs; mean "
        f"{stats['mean_devices']:.1f} devices, median "
        f"{stats['median_devices']}, max {stats['max_devices']}.")
    geo = server["geo"]
    parts.append(
        f"\n### Geography (Table 16)\n\n"
        f"- certificates identical across all vantages for "
        f"{geo.shared_across_all} SNIs; per-location exclusives: "
        f"{geo.exclusive}.")
    lab = server["lab"]
    parts.append(
        f"\n### Lab cross-check (Appendix C.4.2)\n\n"
        f"- {len(lab.common_snis)} SNIs in common; "
        f"{lab.same_issuer} same-issuer "
        f"({percent(lab.consistency)} consistent).")
    return "\n".join(parts)


def render_report(results, seed, generated_at=None):
    """Render the full pipeline output as markdown."""
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC",
                          time.gmtime(generated_at)) \
        if generated_at is not None else "now"
    header = (
        "# IoT TLS & Certificate Practice — study report\n\n"
        f"Reproduction of Dong et al., IMC 2023 — seed {seed}, "
        f"generated {stamp}.\n")
    return "\n".join([header, _section_client(results["client"]),
                      _section_server(results["server"]), ""])
