"""Sections 4.2–4.3 — customization metrics across vendors and devices.

Implements the paper's degree-of-customization metrics:

- fingerprint *degree* (number of vendors using it) and the Table 2
  distribution;
- ``DoC_vendor`` — fraction of a vendor's fingerprints used by no other
  vendor (Figure 2, red);
- per-device ``DoC`` — fraction of a device's fingerprints used by no
  other device *of the same vendor* — and its vendor mean ``DoC_device``
  (Figure 2, blue; Figure 10);
- Table 3's per-vendor heterogeneity statistics.
"""

from collections import Counter
from dataclasses import dataclass


def degree_distribution(dataset):
    """Table 2 — fraction of fingerprints per degree bucket."""
    buckets = Counter()
    for fp in dataset.fingerprints():
        degree = dataset.fingerprint_degree(fp)
        if degree == 1:
            buckets["1"] += 1
        elif degree == 2:
            buckets["2"] += 1
        elif degree <= 5:
            buckets["3-5"] += 1
        else:
            buckets[">5"] += 1
    total = max(1, sum(buckets.values()))
    return {key: buckets[key] / total for key in ("1", "2", "3-5", ">5")}


def doc_vendor(dataset, vendor):
    """``DoC_vendor`` — #fingerprints solely used by this vendor over
    #fingerprints used by this vendor."""
    fingerprints = dataset.vendor_fingerprints(vendor)
    if not fingerprints:
        return 0.0
    solely = sum(1 for fp in fingerprints
                 if dataset.fingerprint_degree(fp) == 1)
    return solely / len(fingerprints)


def doc_vendor_all(dataset):
    """vendor → DoC_vendor for every vendor (Figure 2 red CDF input)."""
    return {vendor: doc_vendor(dataset, vendor)
            for vendor in dataset.vendor_names()}


def doc_device(dataset, device_id):
    """Per-device ``DoC`` within its vendor (Section 4.3)."""
    fingerprints = dataset.device_fingerprints(device_id)
    if not fingerprints:
        return 0.0
    vendor = dataset.device_vendor(device_id)
    solely = 0
    for fp in fingerprints:
        users = {d for d in dataset.fingerprint_devices(fp)
                 if dataset.device_vendor(d) == vendor}
        if users == {device_id}:
            solely += 1
    return solely / len(fingerprints)


def doc_device_vendor(dataset, vendor):
    """``DoC_device`` — mean per-device DoC across a vendor's devices."""
    devices = dataset.devices_of_vendor(vendor)
    if not devices:
        return 0.0
    return sum(doc_device(dataset, d) for d in devices) / len(devices)


def doc_device_all(dataset):
    """vendor → DoC_device (Figure 2 blue CDF input)."""
    return {vendor: doc_device_vendor(dataset, vendor)
            for vendor in dataset.vendor_names()}


def doc_distribution(dataset):
    """Figure 10 — vendor → list of per-device DoC values."""
    return {vendor: [doc_device(dataset, d)
                     for d in dataset.devices_of_vendor(vendor)]
            for vendor in dataset.vendor_names()}


@dataclass(frozen=True)
class VendorHeterogeneity:
    """One Table 3 row."""

    vendor: str
    fingerprint_count: int
    shared_by_10_or_more: float   # fraction of fingerprints on ≥10 devices
    used_by_one_device: float     # fraction of fingerprints on exactly 1


def vendor_heterogeneity(dataset, vendor):
    """Compute one vendor's Table 3 row."""
    fingerprints = dataset.vendor_fingerprints(vendor)
    if not fingerprints:
        return VendorHeterogeneity(vendor, 0, 0.0, 0.0)
    shared10 = single = 0
    for fp in fingerprints:
        devices = {d for d in dataset.fingerprint_devices(fp)
                   if dataset.device_vendor(d) == vendor}
        if len(devices) >= 10:
            shared10 += 1
        if len(devices) == 1:
            single += 1
    total = len(fingerprints)
    return VendorHeterogeneity(vendor, total, shared10 / total,
                               single / total)


def top_vendor_heterogeneity(dataset, top=10):
    """Table 3 — the ``top`` vendors by fingerprint count."""
    rows = [vendor_heterogeneity(dataset, vendor)
            for vendor in dataset.vendor_names()]
    rows.sort(key=lambda row: row.fingerprint_count, reverse=True)
    return rows[:top]
