"""Section 6 — case studies: smart TVs and PKI on the local network.

These use lab-captured traffic rather than IoT Inspector, so they come
with their own miniature worlds:

- **Smart TVs** (Section 6.1, Figure 7, Table 17): traffic of Amazon and
  Roku TV devices in 2019.  Third-party channel servers mostly use
  public-trust certificates but frequently present incomplete chains or
  expired certificates; the vendor-owned servers are vendor-signed —
  Amazon with ~400-day CT-logged certificates, Roku with ~5,000-day
  certificates never logged.
- **Local network** (Section 6.2): Amazon Echo/Fire TV and Google
  Chromecast/Home speak TLS to each other with self-signed or private
  "Cast Root CA" certificates, 1–22-year validity, in no trust store and
  no CT log.
"""

from dataclasses import dataclass, field
from types import SimpleNamespace

from repro.core.issuers import leaf_issuer_org
from repro.inspector.generator import ServerSpec
from repro.inspector.timeline import days, parse_date
from repro.probing.network import SimulatedNetwork
from repro.probing.prober import Prober
from repro.x509.certificate import sign_certificate
from repro.x509.keys import generate_keypair
from repro.x509.names import DistinguishedName
from repro.x509.validation import ChainStatus

#: Reference time of the TV lab capture.
TV_CAPTURE_TIME = parse_date("2019-06-15")


def _tv(fqdn, sld, owner, issuer, *, chain="ok", validity=None,
        expired=None, group="roku"):
    return ServerSpec(fqdn=fqdn, sld=sld, owner=owner, issuer=issuer,
                      chain=chain, validity_days=validity,
                      expired_not_after=expired,
                      audience=f"tv:{group}")


#: The smart-TV server catalog (Table 17's domains, with FQDN counts).
def tv_server_specs():
    specs = []

    def many(count, sld, owner, issuer, **kwargs):
        for i in range(count):
            specs.append(_tv(f"ch{i}.{sld}", sld, owner, issuer, **kwargs))

    # --- visited by the Amazon TV group ------------------------------------
    many(5, "netflix.com", "Netflix", "Netflix", chain="ok",
         validity=8150, group="amazon")
    many(2, "playstation.net", "Sony", "DigiCert", chain="no_intermediate",
         group="amazon")
    many(1, "tremorvideo.com", "Tremor", "Sectigo", chain="no_intermediate",
         group="amazon")
    many(1, "hsn.com", "HSN", "DigiCert", chain="no_intermediate",
         group="amazon")
    many(2, "roku.com", "Roku", "Roku", chain="with_root", validity=5000,
         group="amazon")
    many(1, "clikia.com", "Clikia", "GoDaddy", expired="2018-11-20",
         group="amazon")
    specs.append(_tv("arcus-uswest.amazon.com", "amazon.com", "Amazon",
                     "Amazon", expired="2019-03-02", group="amazon-own"))
    # Amazon-owned infrastructure: vendor-signed, ~400 days, in CT.
    many(6, "amazon-device-cloud.com", "Amazon", "Amazon", validity=400,
         group="amazon-own")
    many(4, "amazon-tv-api.com", "Amazon", "DigiCert", validity=397,
         group="amazon-own")
    # --- visited by the Roku TV group ----------------------------------------
    many(12, "netflix.com", "Netflix", "Netflix", chain="ok",
         validity=8150, group="roku")
    many(6, "roku-channel.com", "Roku", "Roku", chain="ok", validity=5000,
         group="roku-own")
    many(2, "vvond.net", "Vudu", "DigiCert", chain="no_intermediate",
         group="roku")
    for sld, owner in (("tremorvideo.com", "Tremor"), ("cymtv.com", "CYM"),
                       ("rhythmxchange.com", "RhythmOne"),
                       ("rubiconproject.com", "Rubicon"),
                       ("contextweb.com", "PulsePoint"),
                       ("sonyentertainmentnetwork.com", "Sony"),
                       ("otherworlds.tv", "OtherWorlds"),
                       ("spotxchange.com", "SpotX")):
        many(1, sld, owner, "Sectigo", chain="no_intermediate", group="roku")
    many(1, "roku.com", "Roku", "Roku", chain="with_root", validity=5000,
         group="roku-own")
    many(1, "netflix.net", "Netflix", "Netflix", chain="with_root",
         validity=8150, group="roku")
    many(1, "rokutime.com", "Roku", "Roku", chain="with_root",
         validity=4748, group="roku-own")
    for sld, owner in (("altitude-arena.com", "Altitude"),
                       ("saddleback.com", "Saddleback"),
                       ("smartott.com", "SmartOTT"),
                       ("yumenetworks.com", "YuMe")):
        many(1, sld, owner, "GoDaddy", expired="2019-01-05", group="roku")
    # Roku-owned services signed by a mix of CAs (Figure 7's spread).
    many(3, "roku-cloud-api.com", "Roku", "Amazon", validity=395,
         group="roku-own")
    many(3, "roku-cdn.net", "Roku", "DigiCert", validity=397,
         group="roku-own")
    many(2, "roku-ads.com", "Roku", "Let's Encrypt", validity=90,
         group="roku-own")
    many(4, "roku-device-api.com", "Roku", "Roku", validity=5000,
         group="roku-own")
    return specs


@dataclass
class SmartTVStudy:
    """Results of the Section 6.1 case study."""

    #: group label → fqdn → ValidationReport
    validations: dict = field(default_factory=dict)
    #: group label → list of (issuer org, validity days, in CT) per leaf
    vendor_infrastructure: dict = field(default_factory=dict)

    def status_table(self):
        """Table 17 — domain lists per chain issue, per TV group."""
        table = {}
        for group, reports in self.validations.items():
            buckets = {}
            for fqdn, report in reports.items():
                if report.status is ChainStatus.INCOMPLETE_CHAIN:
                    key = "Incomplete chain"
                elif report.status in (ChainStatus.UNTRUSTED_ROOT,
                                       ChainStatus.SELF_SIGNED):
                    key = "Untrusted root CA"
                elif report.expired:
                    key = "Expired certificate"
                else:
                    continue
                buckets.setdefault(key, []).append(fqdn)
            table[group] = {key: sorted(fqdns)
                            for key, fqdns in buckets.items()}
        return table


def smart_tv_study(ecosystem=None, seed=2023):
    """Run the smart-TV case study end to end."""
    specs = tv_server_specs()
    shim = SimpleNamespace(seed=seed, servers=specs,
                           reachable_servers=lambda: specs)
    network = SimulatedNetwork(shim, ecosystem=ecosystem)
    prober = Prober(network)
    study = SmartTVStudy()
    from repro.x509.validation import ChainValidator
    validator = ChainValidator(network.ecosystem.union_store)
    groups = {}
    for spec in specs:
        groups.setdefault(spec.audience.split(":", 1)[1], []).append(spec)
    for group, members in groups.items():
        reports = {}
        infra = []
        for spec in members:
            result = prober.probe_one(spec.fqdn, prober.vantages[0],
                                      at=TV_CAPTURE_TIME)
            if not result.chain:
                continue
            reports[spec.fqdn] = validator.validate(
                result.chain, at=TV_CAPTURE_TIME, hostname=spec.fqdn)
            leaf = result.leaf
            infra.append((leaf_issuer_org(leaf), leaf.validity_days,
                          network.ct_logs.query(leaf)))
        study.validations[group] = reports
        study.vendor_infrastructure[group] = infra
    return study


# --- Section 6.2: PKI on the local network -----------------------------------


@dataclass(frozen=True)
class LocalConnection:
    """One observed local TLS connection."""

    client: str
    server: str
    port: int
    tls_version: str
    chain: tuple          # certificates, leaf first; empty when encrypted
    chain_extractable: bool

    @property
    def leaf(self):
        return self.chain[0] if self.chain else None


@dataclass
class LocalPKIStudy:
    connections: list = field(default_factory=list)

    def extractable(self):
        return [c for c in self.connections if c.chain_extractable]


def local_pki_study(seed=2023, now=None):
    """Build the Section 6.2 local-network observations.

    Returns a :class:`LocalPKIStudy` whose certificates reproduce the
    paper's findings: Echo's one-year self-signed certificate with its IP
    as CN; Chromecast/Home chains ending at "Cast Root CA" intermediates
    with 20–22-year validity; and the TLS 1.3 connection whose
    certificates cannot be extracted.
    """
    from repro.inspector.stacks import stable_rng
    now = now or parse_date("2020-02-01")
    rng = stable_rng(seed, "localpki")

    def keypair():
        return generate_keypair(512, rng=rng)

    # Amazon Echo: self-signed leaf, CN = its LAN IP, one year validity.
    echo_key = keypair()
    echo_subject = DistinguishedName(common_name="192.168.7.52")
    echo_cert = sign_certificate(
        serial=rng.getrandbits(32), subject=echo_subject,
        issuer=echo_subject, issuer_keypair=echo_key,
        not_before=now, not_after=now + days(365),
        public_key=echo_key.public)

    # Cast PKI: a private "Cast Root CA" signs per-product-line ICAs with
    # 20–22 year validity; device leafs carry serial-number CNs.
    cast_root_key = keypair()
    cast_root_subject = DistinguishedName(common_name="Cast Root CA",
                                          organization="Google")
    ica12_key = keypair()
    ica12 = sign_certificate(
        serial=rng.getrandbits(32),
        subject=DistinguishedName(common_name="Chromecast ICA 12",
                                  organization="Google"),
        issuer=cast_root_subject, issuer_keypair=cast_root_key,
        not_before=now - days(365), not_after=now + days(22 * 365),
        public_key=ica12_key.public, is_ca=True)
    ica16_key = keypair()
    ica16 = sign_certificate(
        serial=rng.getrandbits(32),
        subject=DistinguishedName(
            common_name="Chromecast ICA 16 (Audio Assist 4)",
            organization="Google"),
        issuer=cast_root_subject, issuer_keypair=cast_root_key,
        not_before=now - days(365), not_after=now + days(20 * 365),
        public_key=ica16_key.public, is_ca=True)

    def cast_leaf(ica_key, ica_cert):
        key = keypair()
        serial_cn = format(rng.getrandbits(64), "016X")
        return sign_certificate(
            serial=rng.getrandbits(32),
            subject=DistinguishedName(common_name=serial_cn),
            issuer=ica_cert.subject, issuer_keypair=ica_key,
            not_before=now - days(30), not_after=now + days(730),
            public_key=key.public)

    chromecast_leaf = cast_leaf(ica12_key, ica12)
    home_leaf = cast_leaf(ica16_key, ica16)

    study = LocalPKIStudy()
    study.connections.extend([
        LocalConnection(client="Amazon Fire TV", server="Amazon Echo",
                        port=55443, tls_version="TLS 1.2",
                        chain=(echo_cert,), chain_extractable=True),
        LocalConnection(client="Google Home", server="Google Chromecast",
                        port=10101, tls_version="TLS 1.2",
                        chain=(chromecast_leaf, ica12),
                        chain_extractable=True),
        LocalConnection(client="Pixel 5", server="Google Chromecast",
                        port=8443, tls_version="TLS 1.2",
                        chain=(chromecast_leaf, ica12),
                        chain_extractable=True),
        LocalConnection(client="Pixel 5", server="Google Home",
                        port=8443, tls_version="TLS 1.2",
                        chain=(home_leaf, ica16), chain_extractable=True),
        LocalConnection(client="MacBook", server="Google Chromecast",
                        port=32245, tls_version="TLS 1.3",
                        chain=(), chain_extractable=False),
    ])
    return study
