"""Section 4.2 — security levels of fingerprints and ciphersuites.

A fingerprint's security level is the worst level among its proposed
suites; vulnerable components follow the paper's taxonomy (anonymous key
exchange, export grade, NULL, RC2/RC4, DES/3DES — MD5/SHA-1 MACs are
*not* counted).  Also computes Figure 9's per-vendor vulnerability flows
and the headline statistics (44.63% of fingerprints with at least one
vulnerable component; 3DES in 41.64%).
"""

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.tlslib.ciphersuites import SecurityLevel, suite_by_code


def fingerprint_vulnerable_components(fp):
    """Sorted vulnerability tags across a fingerprint's ciphersuites."""
    tags = set()
    for code in fp[1]:
        tags.update(suite_by_code(code).vulnerable_components())
    return sorted(tags)


def fingerprint_security_level(fp):
    """The worst suite security level in the fingerprint."""
    worst = SecurityLevel.OPTIMAL
    for code in fp[1]:
        level = suite_by_code(code).security_level
        if level > worst:
            worst = level
    return worst


@dataclass
class VulnerabilityReport:
    """Study-wide vulnerability statistics (Section 4.2)."""

    total_fingerprints: int
    vulnerable_fingerprints: int
    multi_device_vulnerable: int
    component_counts: Counter = field(default_factory=Counter)
    severe_fingerprints: int = 0
    severe_devices: set = field(default_factory=set)
    severe_vendors: set = field(default_factory=set)

    @property
    def vulnerable_fraction(self):
        return self.vulnerable_fingerprints / max(1, self.total_fingerprints)

    def component_fraction(self, tag):
        return self.component_counts[tag] / max(1, self.total_fingerprints)


#: Components the paper singles out as severe (footnote 3/4 of Section 4.2).
SEVERE_TAGS = frozenset({"ANON", "EXPORT", "NULL", "RC2"})


def vulnerability_report(dataset):
    """Compute the Section 4.2 vulnerability statistics."""
    fingerprints = dataset.fingerprints()
    report = VulnerabilityReport(
        total_fingerprints=len(fingerprints),
        vulnerable_fingerprints=0, multi_device_vulnerable=0)
    for fp in fingerprints:
        tags = fingerprint_vulnerable_components(fp)
        if not tags:
            continue
        report.vulnerable_fingerprints += 1
        if len(dataset.fingerprint_devices(fp)) > 1:
            report.multi_device_vulnerable += 1
        for tag in tags:
            report.component_counts[tag] += 1
        if SEVERE_TAGS.intersection(tags):
            report.severe_fingerprints += 1
            report.severe_devices.update(dataset.fingerprint_devices(fp))
            report.severe_vendors.update(dataset.fingerprint_vendors(fp))
    return report


def vendor_vulnerability_flows(dataset):
    """Figure 9 — per-vendor {device, ciphersuite list} vulnerability flows.

    Returns ``vendor → Counter(component tuple → tuple count)`` where each
    unit is a distinct {device, ciphersuite list} pair, matching the
    figure's flow units.
    """
    flows = defaultdict(Counter)
    seen = set()
    for record in dataset.records:
        key = (record.device_id, record.ciphersuites)
        if key in seen:
            continue
        seen.add(key)
        tags = set()
        for code in record.ciphersuites:
            tags.update(suite_by_code(code).vulnerable_components())
        flows[record.vendor][tuple(sorted(tags))] += 1
    return dict(flows)
