"""Plot-ready data series for every figure in the paper.

The benchmarks print textual summaries; this module exports the exact
series a plotting frontend (matplotlib, d3, ...) would consume, as plain
JSON-serializable dicts.  ``export_all`` writes one JSON file per figure
— the repository's equivalent of the paper's figure sources.
"""

import json
import pathlib

from repro.core import customization, graphs, security, semantics
from repro.core.ct_validity import ct_report
from repro.core.issuers import issuer_report
from repro.core.preferences import lowest_vulnerable_index
from repro.core.tables import truncate_fp


def figure1_data(dataset):
    """Figure 1 — the vendor × fingerprint graph as a node/link list."""
    graph = graphs.vendor_fingerprint_graph(dataset)
    nodes, links = [], []
    for node, data in graph.nodes(data=True):
        kind, payload = node
        if data["bipartite"] == "vendor":
            nodes.append({"id": f"vendor:{payload}", "kind": "vendor",
                          "label": payload, "index": data["index"]})
        else:
            nodes.append({
                "id": f"fp:{truncate_fp(payload)}", "kind": "fingerprint",
                "security": data["security"],
                "vulnerable_components":
                    list(data["vulnerable_components"]),
                "device_count": data["device_count"],
            })
    for a, b in graph.edges():
        vendor, fp = (a, b) if a[0] == "vendor" else (b, a)
        links.append({"source": f"vendor:{vendor[1]}",
                      "target": f"fp:{truncate_fp(fp[1])}"})
    return {"nodes": nodes, "links": links}


def figure2_data(dataset):
    """Figure 2 — the two DoC CDFs as sorted value lists."""
    return {
        "doc_vendor": sorted(
            customization.doc_vendor_all(dataset).values()),
        "doc_device": sorted(
            customization.doc_device_all(dataset).values()),
    }


def figure6_data(dataset, certificates, survey, ecosystem, ct_logs):
    """Figure 6 — per-vendor validity/CT scatter points."""
    report = ct_report(dataset, certificates, survey, ecosystem, ct_logs)
    return {
        "points": [
            {"vendor": point.vendor,
             "validity_days": round(point.validity_days, 1),
             "category": point.category, "in_ct": point.in_ct}
            for point in report.points
        ]
    }


def figure8_data(dataset, corpus):
    """Figure 8 — Jaccard histograms for the component categories."""
    matches = semantics.semantic_fingerprinting(dataset, corpus)
    return {"bins": 10,
            "histograms": semantics.jaccard_distribution(matches)}


def figure10_data(dataset):
    """Figure 10 — per-device DoC values grouped by vendor."""
    return {vendor: values for vendor, values
            in customization.doc_distribution(dataset).items()}


def figure11_data(dataset):
    """Figure 11 — lowest vulnerable-suite indexes per vendor."""
    return {vendor: sorted(values) for vendor, values
            in lowest_vulnerable_index(dataset).items()}


def figure_ml_data(study):
    """Learned attribution (beyond the paper) — confusion + coverage.

    Derived from the memoized ``repro.ml`` eval payload, so exporting
    figures after a report run retrains nothing.  Lazy import keeps
    numpy optional for every paper figure.
    """
    from repro.ml import evaluate_study
    payload = evaluate_study(study)
    return {"classes": payload["classes"],
            "confusion": payload["confusion"],
            "per_class": payload["per_class"],
            "accuracy": payload["accuracy"],
            "macro": payload["macro"],
            "exact_match_rate": payload["exact_match_rate"],
            "coverage": payload["coverage"]}


def figure5_data(dataset, certificates, ecosystem):
    """Figure 5 — the issuer × vendor ratio matrix."""
    report = issuer_report(dataset, certificates, ecosystem)
    matrix = {}
    for vendor in sorted(report.matrix):
        matrix[vendor] = {org: round(share, 4) for org, share
                          in report.vendor_issuer_ratios(vendor).items()}
    return {"issuers": report.issuer_orgs,
            "public": report.public_orgs,
            "private": report.private_orgs,
            "matrix": matrix}


def figure9_data(dataset):
    """Figure 9 — vulnerability flows per vendor."""
    flows = security.vendor_vulnerability_flows(dataset)
    return {vendor: {"|".join(tags) or "clean": count
                     for tags, count in counter.items()}
            for vendor, counter in flows.items()}


def figure_payloads(study):
    """Every figure's data series, as one ``{figure name: payload}`` dict.

    The JSON-serializable source of truth shared by ``export_all`` and
    the conformance baseline (:mod:`repro.verify`), which snapshots the
    payloads without touching the filesystem.
    """
    from repro.core.chains import validate_all
    from repro.inspector.timeline import PROBE_TIME
    dataset = study.dataset
    certificates = study.certificates
    survey = validate_all(certificates, study.validator(), at=PROBE_TIME)
    return {
        "figure1": figure1_data(dataset),
        "figure2": figure2_data(dataset),
        "figure5": figure5_data(dataset, certificates, study.ecosystem),
        "figure6": figure6_data(dataset, certificates, survey,
                                study.ecosystem, study.network.ct_logs),
        "figure8": figure8_data(dataset, study.corpus),
        "figure9": figure9_data(dataset),
        "figure10": figure10_data(dataset),
        "figure11": figure11_data(dataset),
        "figure_ml": figure_ml_data(study),
    }


def export_all(study, directory):
    """Write every figure's data as JSON under ``directory``.

    Returns the list of written paths.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payloads = figure_payloads(study)
    written = []
    for name, payload in payloads.items():
        path = directory / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True),
                        encoding="utf-8")
        written.append(path)
    return written
