"""Section 4.1 — matching device fingerprints to known libraries.

Compares every distinct device fingerprint against the known-library
corpus and summarizes the results the way the paper reports them: how
many fingerprints match (23 of 903, 2.55%), how many distinct libraries
they resolve to (16: 14 curl+OpenSSL, 2 Mbed TLS), and how many of those
libraries were already unsupported in 2020 (14 of 16).
"""

from dataclasses import dataclass, field


@dataclass
class MatchReport:
    """Outcome of the corpus-matching analysis."""

    total_fingerprints: int
    matched: dict = field(default_factory=dict)   # fp key → LibraryFingerprint
    device_counts: dict = field(default_factory=dict)  # fp key → #devices

    @property
    def matched_count(self):
        return len(self.matched)

    @property
    def matched_fraction(self):
        if not self.total_fingerprints:
            return 0.0
        return self.matched_count / self.total_fingerprints

    def matched_libraries(self):
        """Distinct libraries (full names) the matches resolve to."""
        return sorted({library.full_name for library in self.matched.values()})

    def libraries_by_family(self):
        """family → count of distinct matched library versions."""
        families = {}
        for library in set(self.matched.values()):
            families.setdefault(library.library, set()).add(library.version)
        return {family: len(versions)
                for family, versions in sorted(families.items())}

    def unsupported_libraries(self):
        """Matched libraries whose branch was unsupported as of 2020."""
        return sorted({library.full_name
                       for library in self.matched.values()
                       if not library.supported_in_2020})

    def matched_devices(self):
        """Total devices whose fingerprints matched a known library."""
        return sum(self.device_counts.get(fp, 0) for fp in self.matched)


def match_against_corpus(dataset, corpus):
    """Run the Section 4.1 analysis.

    Args:
        dataset: an :class:`~repro.inspector.dataset.InspectorDataset`.
        corpus: a :class:`~repro.libraries.corpus.LibraryCorpus`.

    Returns a :class:`MatchReport`.
    """
    fingerprints = dataset.fingerprints()
    report = MatchReport(total_fingerprints=len(fingerprints))
    for fp in fingerprints:
        version, suites, extensions = fp
        library = corpus.match(version, suites, extensions)
        if library is not None:
            report.matched[fp] = library
            report.device_counts[fp] = len(dataset.fingerprint_devices(fp))
    return report


def validate_case_study(dataset, corpus, vendor):
    """Fingerprinting validation for one vendor (the Wyze/Enphase case).

    Returns the matched library names observed for devices of ``vendor``,
    which can be checked against the vendor's open-source disclosures.
    """
    matches = set()
    for fp in dataset.vendor_fingerprints(vendor):
        library = corpus.match(*fp)
        if library is not None:
            matches.add(library.full_name)
    return sorted(matches)
