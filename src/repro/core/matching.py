"""Section 4.1 — matching device fingerprints to known libraries.

Compares every distinct device fingerprint against the known-library
corpus and summarizes the results the way the paper reports them: how
many fingerprints match (23 of 903, 2.55%), how many distinct libraries
they resolve to (16: 14 curl+OpenSSL, 2 Mbed TLS), and how many of those
libraries were already unsupported in 2020 (14 of 16).

The analysis itself now lives on :class:`repro.match.MatchEngine`
(which adds the sketch-accelerated execution mode); this module keeps
the :class:`MatchReport` result type and backwards-compatible free
functions.  ``match_against_corpus`` is deprecated — call
``MatchEngine.match_report`` (or ``repro.match.shared_engine()``)
instead.
"""

import warnings
from dataclasses import dataclass, field


@dataclass
class MatchReport:
    """Outcome of the corpus-matching analysis."""

    total_fingerprints: int
    matched: dict = field(default_factory=dict)   # fp key → LibraryFingerprint
    device_counts: dict = field(default_factory=dict)  # fp key → #devices

    @property
    def matched_count(self):
        return len(self.matched)

    @property
    def matched_fraction(self):
        if not self.total_fingerprints:
            return 0.0
        return self.matched_count / self.total_fingerprints

    def matched_libraries(self):
        """Distinct libraries (full names) the matches resolve to."""
        return sorted({library.full_name for library in self.matched.values()})

    def libraries_by_family(self):
        """family → count of distinct matched library versions."""
        families = {}
        for library in set(self.matched.values()):
            families.setdefault(library.library, set()).add(library.version)
        return {family: len(versions)
                for family, versions in sorted(families.items())}

    def unsupported_libraries(self):
        """Matched libraries whose branch was unsupported as of 2020."""
        return sorted({library.full_name
                       for library in self.matched.values()
                       if not library.supported_in_2020})

    def matched_devices(self):
        """Total devices whose fingerprints matched a known library."""
        return sum(self.device_counts.get(fp, 0) for fp in self.matched)


def match_against_corpus(dataset, corpus):
    """Run the Section 4.1 analysis.  Deprecated.

    Use :meth:`repro.match.MatchEngine.match_report` (or the
    mode-aware process engine, ``repro.match.shared_engine()``); this
    shim delegates there and will be removed in a future release.

    Returns a :class:`MatchReport`.
    """
    warnings.warn(
        "repro.core.matching.match_against_corpus is deprecated; use "
        "repro.match.MatchEngine.match_report "
        "(repro.match.shared_engine().match_report)",
        DeprecationWarning, stacklevel=2)
    from repro.match.engine import shared_engine
    return shared_engine().match_report(dataset, corpus)


def validate_case_study(dataset, corpus, vendor):
    """Fingerprinting validation for one vendor (the Wyze/Enphase case).

    Returns the matched library names observed for devices of ``vendor``,
    which can be checked against the vendor's open-source disclosures.
    """
    from repro.match.engine import shared_engine
    return shared_engine().validate_case_study(dataset, corpus, vendor)
