"""``repro.obs`` — observability for the whole study pipeline.

Production measurement systems (Active TLS Stack Fingerprinting, IoT
Inspector) live or die on per-stage telemetry: without it, scan skew and
regressions hide inside a multi-minute pipeline.  This package gives the
reproduction the same three primitives:

- :class:`~repro.obs.tracer.Tracer` — nested, thread-safe spans with a
  deterministic-clock hook (``span("probe.all")``), recording wall time,
  per-span counters, and parent/child structure;
- :class:`~repro.obs.metrics.MetricsRegistry` — named counters, gauges,
  histograms, and keyed counter families whose snapshots are
  deterministic (sorted, timing-free) for a given seed and config;
- :class:`~repro.obs.sink.JsonlSink` — a structured-event JSONL sink the
  tracer streams closed spans into, plus the
  :class:`~repro.obs.manifest.RunManifest` written alongside every CLI
  artifact (seed, config digest, package version, stage timings, metric
  snapshot).

Instrumented code never imports the tracer directly; it calls the
module-level helpers below (:func:`span`, :func:`incr`, :func:`gauge`),
which proxy to the process-global *active* :class:`Observability`
context.  By default the context is disabled and every helper is a
cheap no-op, so library callers pay nothing; the CLI (and tests) switch
it on with :func:`activate` / :func:`enabled`.

Activation is process-global, not thread-local: one coordinator (the
CLI command, a benchmark harness) owns the context and worker threads
report into it.
"""

import time
from contextlib import contextmanager

from repro.obs.metrics import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder, TeeSink
from repro.obs.sink import JsonlSink, NullSink
from repro.obs.slo import SloObjective, SloTracker
from repro.obs.tracer import NULL_SPAN, Span, Stopwatch, Tracer

__all__ = [
    "Counter", "CounterFamily", "FlightRecorder", "Gauge", "Histogram",
    "JsonlSink", "MetricsRegistry", "NullSink", "Observability",
    "ServiceTelemetry", "SloObjective", "SloTracker", "Span",
    "Stopwatch", "TeeSink", "Tracer", "activate", "active_registry",
    "current", "deactivate", "enabled", "ensure_enabled", "gauge",
    "incr", "parse_prometheus", "render_prometheus", "span",
]


class Observability:
    """One observability context: a tracer plus a metrics registry.

    ``enabled=False`` builds the inert singleton used as the default
    active context — every operation on it is a no-op.  The ``clock``
    hook feeds the tracer, so a fake clock makes traces fully
    deterministic in tests.
    """

    def __init__(self, clock=time.perf_counter, sink=None, enabled=True):
        self.enabled = enabled
        self.sink = sink if sink is not None else NullSink()
        if enabled:
            self.metrics = MetricsRegistry()
            self.tracer = Tracer(clock=clock, sink=self.sink)
        else:
            self.metrics = None
            self.tracer = None

    def span(self, name, parent=None):
        """Open a span on the tracer (no-op span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, parent=parent)

    def incr(self, name, key=None, n=1):
        """Bump a counter (``key`` selects a counter-family member)."""
        if not self.enabled:
            return
        if key is None:
            self.metrics.counter(name).inc(n)
        else:
            self.metrics.family(name).inc(key, n)

    def gauge(self, name, value):
        """Set a gauge (no-op when disabled)."""
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def close(self):
        """Flush the metric snapshot into the sink and close it."""
        if self.enabled:
            self.sink.emit({"type": "metrics",
                            "snapshot": self.metrics.snapshot()})
        self.sink.close()


#: The inert default context; module helpers proxy to ``_active``.
_DISABLED = Observability(enabled=False)
_active = _DISABLED


def current():
    """The process-global active observability context."""
    return _active


def activate(obs):
    """Install ``obs`` as the active context; returns the previous one."""
    global _active
    previous = _active
    _active = obs
    return previous


def deactivate(previous=None):
    """Restore ``previous`` (or the disabled default) as active."""
    global _active
    _active = previous if previous is not None else _DISABLED


@contextmanager
def enabled(clock=time.perf_counter, sink=None):
    """``with obs.enabled() as ctx:`` — a scoped live context."""
    ctx = Observability(clock=clock, sink=sink)
    previous = activate(ctx)
    try:
        yield ctx
    finally:
        deactivate(previous)


def span(name, parent=None):
    """Open a span on the active context (module-level convenience)."""
    return _active.span(name, parent=parent)


def incr(name, key=None, n=1):
    """Bump a counter on the active context."""
    _active.incr(name, key=key, n=n)


def gauge(name, value):
    """Set a gauge on the active context."""
    _active.gauge(name, value)


def active_registry():
    """The active context's registry, or None when disabled.

    Components that keep their own private registry when observability
    is off (e.g. :class:`~repro.probing.engine.ProbeStats`) use this to
    join the shared one when it is on.
    """
    return _active.metrics


def ensure_enabled(clock=time.perf_counter, sink=None):
    """Activate a fresh enabled context iff the active one is disabled.

    Returns the active (now guaranteed enabled) context.  Long-running
    services (``repro serve``) call this at boot so ``/metrics`` is
    never silently empty; an already-active context — e.g. the one the
    CLI installs around every command — is left in place untouched.
    """
    if not _active.enabled:
        activate(Observability(clock=clock, sink=sink))
    return _active


# Imported last: telemetry builds on the context helpers above.
from repro.obs.telemetry import (  # noqa: E402
    ServiceTelemetry,
    parse_prometheus,
    render_prometheus,
)
