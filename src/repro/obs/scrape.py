"""Client-side helpers for ``repro obs``: scrape, render, diff.

The ``repro obs`` CLI group inspects a *running* ``repro serve``
process from the outside, the way an operator (or a Prometheus scraper)
would — over plain HTTP, no shared state:

- :func:`scrape` — one GET against the server, JSON or exposition
  text, with connection/HTTP failures folded into a single
  :class:`ScrapeError` whose message is a one-line diagnosis;
- :func:`render_top` — a text dashboard of one poll (health, SLO
  verdicts, request counters, ingest lag, latency histograms), plus
  request-rate deltas against the previous poll;
- :func:`diff_snapshots` / :func:`render_diff` — compare two exported
  metric snapshots and flag regressions (error counters that grew, lag
  gauges that rose, latency distributions that shifted slow).

Everything here returns data or strings — printing belongs to the CLI.
"""

import json
import urllib.error
import urllib.request

from repro.obs.metrics import flatten_snapshot
from repro.obs.telemetry import _le_bound

#: counter/family name fragments whose growth counts as a regression.
ERROR_MARKERS = ("error", "fail", "exhausted", "5xx")

#: gauges whose *increase* between snapshots counts as a regression.
LAG_GAUGES = ("ingest.lag_windows", "ingest.last_checkpoint_age",
              "ingest.records_behind")

#: latency-histogram buckets above this bound (ms) count as "slow".
SLOW_MS = 250.0


class ScrapeError(Exception):
    """A failed scrape, with a one-line human-readable message."""


def scrape(base_url, path, timeout=10, as_text=False):
    """GET ``base_url + path``; JSON payload (or raw text).

    Raises :class:`ScrapeError` on connection failures, HTTP errors,
    and unparseable bodies — one line, no traceback.
    """
    url = base_url.rstrip("/") + path
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            body = response.read()
    except urllib.error.HTTPError as exc:
        raise ScrapeError(f"{url}: HTTP {exc.code}") from None
    except OSError as exc:
        reason = getattr(exc, "reason", None) or exc
        raise ScrapeError(f"{url}: {reason}") from None
    if as_text:
        return body.decode("utf-8")
    try:
        return json.loads(body)
    except ValueError:
        raise ScrapeError(f"{url}: response is not JSON") from None


def load_export(path):
    """Load an ``obs export`` JSON file; returns the metrics snapshot.

    Accepts either the raw ``/metrics`` envelope or its ``data`` half,
    so hand-trimmed files keep working.  Raises :class:`ScrapeError`
    on unreadable or unrecognizable files.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ScrapeError(f"{path}: {exc.strerror or exc}") from None
    except ValueError:
        raise ScrapeError(f"{path}: not valid JSON") from None
    if isinstance(payload, dict):
        data = payload.get("data", payload)
        if isinstance(data, dict) and isinstance(
                data.get("metrics"), dict):
            return data["metrics"]
    raise ScrapeError(f"{path}: not an obs export "
                      f"(no metrics snapshot inside)")


def _slow_share(members):
    """Fraction of a le-labeled histogram's observations above
    :data:`SLOW_MS` (``None`` when labels are not le bounds)."""
    bounds = {label: _le_bound(label) for label in members}
    if not members or any(bound is None for bound in bounds.values()):
        return None
    total = sum(members.values())
    if total == 0:
        return 0.0
    # A bucket's observations are <= its bound, so a bucket whose
    # *bound* exceeds SLOW_MS holds requests that may be slower.
    slow = sum(count for label, count in members.items()
               if bounds[label] > SLOW_MS)
    return slow / total


def diff_snapshots(before, after, tolerance=0.05):
    """Compare two metric snapshots; returns a structured report.

    ``before`` / ``after`` are :meth:`MetricsRegistry.snapshot` dicts.
    A *regression* is: an error-marked counter that grew, a lag gauge
    that rose, or a latency histogram whose slow share (observations
    above :data:`SLOW_MS` ms) grew by more than ``tolerance``.
    """
    rows_before = dict(flatten_snapshot(before))
    rows_after = dict(flatten_snapshot(after))
    added = sorted(set(rows_after) - set(rows_before))
    removed = sorted(set(rows_before) - set(rows_after))
    changed = []
    for name in sorted(set(rows_before) & set(rows_after)):
        if rows_before[name] != rows_after[name]:
            changed.append({"name": name, "before": rows_before[name],
                            "after": rows_after[name]})
    regressions = []
    for change in changed:
        name = change["name"]
        grew = isinstance(change["after"], (int, float)) \
            and isinstance(change["before"], (int, float)) \
            and change["after"] > change["before"]
        if not grew:
            continue
        base = name.split("{", 1)[0]
        marked = any(marker in name.lower()
                     for marker in ERROR_MARKERS)
        if marked and base not in LAG_GAUGES:
            regressions.append(dict(change, reason="error counter grew"))
        elif base in LAG_GAUGES:
            regressions.append(dict(change, reason="lag gauge rose"))
    for name in sorted(set(before.get("histograms", {}))
                       & set(after.get("histograms", {}))):
        share_before = _slow_share(before["histograms"][name])
        share_after = _slow_share(after["histograms"][name])
        if share_before is None or share_after is None:
            continue
        if share_after - share_before > tolerance:
            regressions.append({
                "name": name,
                "before": round(share_before, 4),
                "after": round(share_after, 4),
                "reason": f"slow share (>{SLOW_MS:g}ms) grew past "
                          f"{tolerance:g}"})
    return {"added": added, "removed": removed, "changed": changed,
            "regressions": regressions,
            "ok": not regressions}


def render_diff(report, limit=20):
    """A diff report as human-readable lines."""
    lines = [f"metrics diff: {len(report['changed'])} changed, "
             f"{len(report['added'])} added, "
             f"{len(report['removed'])} removed"]
    for change in report["changed"][:limit]:
        lines.append(f"  {change['name']}: {change['before']} -> "
                     f"{change['after']}")
    if len(report["changed"]) > limit:
        lines.append(f"  ... {len(report['changed']) - limit} more")
    if report["regressions"]:
        lines.append(f"regressions ({len(report['regressions'])}):")
        for regression in report["regressions"]:
            lines.append(f"  REGRESSION {regression['name']}: "
                         f"{regression['before']} -> "
                         f"{regression['after']} "
                         f"({regression['reason']})")
    else:
        lines.append("no regressions")
    return "\n".join(lines)


def _requests_total(snapshot):
    families = snapshot.get("families", {})
    middleware = families.get("http.requests")
    if middleware:
        return sum(middleware.values())
    # Fallback: routing-level counters (a scrape that predates any
    # middleware-instrumented traffic).
    return sum(families.get("serve.requests", {}).values()) \
        + sum(families.get("serve.errors", {}).values())


def render_top(healthz, slo, metrics, previous=None, interval=None):
    """One ``repro obs top`` frame as text lines.

    ``healthz`` / ``slo`` are the endpoints' ``data`` payloads;
    ``metrics`` the snapshot; ``previous`` the prior poll's snapshot
    (enables the req/s delta over ``interval`` seconds).
    """
    snapshot = metrics.get("metrics", metrics)
    lines = []
    status = healthz.get("status", "?")
    lines.append(
        f"serve: {status}  seed={healthz.get('seed')}  "
        f"windows {healthz.get('windows_ingested')}/"
        f"{healthz.get('windows_total')}  "
        f"records {healthz.get('records_ingested')}")
    rate = ""
    if previous is not None and interval:
        delta = _requests_total(snapshot) - _requests_total(previous)
        rate = f"  ({delta / interval:.1f} req/s)"
    gauges = snapshot.get("gauges", {})
    lines.append(
        f"requests: {_requests_total(snapshot)} total{rate}  "
        f"in-flight {gauges.get('http.in_flight', 0)}  "
        f"ingest lag {gauges.get('ingest.lag_windows', 0)} windows / "
        f"{gauges.get('ingest.records_behind', 0)} records")
    for objective in slo.get("objectives", ()):
        value = objective.get("value")
        shown = "-" if value is None else f"{value:g}"
        lines.append(
            f"slo {objective['status']:<8s} {objective['name']:<20s} "
            f"{objective['kind']} = {shown} "
            f"(target {objective['comparison']} "
            f"{objective['target']:g}, "
            f"samples {objective['samples']})")
    families = snapshot.get("families", {})
    classes = families.get("http.requests", {})
    if classes:
        by_class = "  ".join(f"{key}={value}" for key, value
                             in sorted(classes.items()))
        lines.append(f"status classes: {by_class}")
    by_route = families.get("http.requests_by_route", {})
    for route, count in sorted(by_route.items(),
                               key=lambda kv: (-kv[1], kv[0]))[:6]:
        lines.append(f"  {route:<20s} {count}")
    return "\n".join(lines)
