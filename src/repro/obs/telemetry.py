"""Service telemetry plane: Prometheus exposition + request middleware.

This module turns the deterministic :class:`~repro.obs.metrics.MetricsRegistry`
snapshot into operational telemetry a scrape-based monitoring stack can
consume, and gives ``repro serve`` the per-request instrumentation a
long-running service needs:

- :func:`render_prometheus` — the registry snapshot as Prometheus text
  exposition (version 0.0.4): counters map to ``_total`` counters,
  gauges to gauges, counter families to labeled counters, and
  histograms whose bucket labels encode ``le`` bounds (see
  :data:`LATENCY_BUCKETS_MS`) to canonical cumulative histograms;
- :func:`parse_prometheus` — a strict parser for the same format, used
  by tests and the CI smoke job to prove the exposition is valid;
- :class:`ServiceTelemetry` — the request/ingest middleware state one
  server owns: per-endpoint latency histograms, status-class counters,
  SLO samples (:class:`~repro.obs.slo.SloTracker`), and the
  :class:`~repro.obs.recorder.FlightRecorder` behind
  ``GET /v1/debug/recent``.

Determinism: every metric here flows through the same registry contract
as the pipeline's — under an injected clock (``ServiceTelemetry(clock=
fake)``) request latencies, SLO verdicts, and recorder events are a
pure function of the request sequence, which is what keeps service
snapshots conformance-testable.  Observation *sums* are deliberately
not tracked (a float sum over thread-interleaved observations is not
deterministic), so rendered histograms carry ``_bucket`` and ``_count``
series but no ``_sum``.
"""

import re
import time

from repro import obs
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloObjective, SloTracker

#: metric-name prefix every exposed series carries.
PROM_PREFIX = "repro"

#: request-latency buckets (milliseconds); labels are the ``le`` bounds,
#: which is what lets :func:`render_prometheus` emit them as a canonical
#: cumulative Prometheus histogram.
LATENCY_BUCKETS_MS = (
    (1.0, "1"), (2.0, "2"), (5.0, "5"), (10.0, "10"), (20.0, "20"),
    (50.0, "50"), (100.0, "100"), (250.0, "250"), (1000.0, "1000"),
    (float("inf"), "+Inf"),
)

#: the service's default objectives: p99 query latency, 5xx error rate,
#: and ingest lag (all judged over a 5-minute sliding window).
DEFAULT_OBJECTIVES = (
    SloObjective(name="query_latency_p99", metric="http.latency_ms",
                 kind="p99", target=250.0, comparison="<=",
                 degraded=1000.0),
    SloObjective(name="error_rate", metric="http.errors", kind="rate",
                 target=0.01, comparison="<=", degraded=0.05),
    SloObjective(name="ingest_lag", metric="ingest.lag_windows",
                 kind="max", target=0.0, comparison="<=", degraded=2.0),
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name, suffix=""):
    """``probe.attempts`` → ``repro_probe_attempts`` (+ ``suffix``)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{PROM_PREFIX}_{sanitized}{suffix}"


def escape_label(value):
    """Escape a label value per the exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_value(value):
    """A number formatted the way Prometheus expects (``+Inf`` aware)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _le_bound(label):
    """The ``le`` bound a histogram bucket label encodes, or ``None``."""
    if label == "+Inf":
        return float("inf")
    try:
        return float(label)
    except ValueError:
        return None


def _histogram_lines(name, members):
    """One histogram's exposition lines.

    Labels that all parse as ``le`` bounds render as a canonical
    cumulative histogram (``_bucket{le=...}`` + ``_count``); anything
    else (e.g. ``probe.latency``'s human-readable ``<10ms`` taxonomy)
    falls back to a labeled counter, which loses the histogram type but
    none of the data.
    """
    bounds = {label: _le_bound(label) for label in members}
    if members and all(bound is not None for bound in bounds.values()):
        base = metric_name(name)
        lines = [f"# TYPE {base} histogram"]
        cumulative = 0
        ordered = sorted(members, key=lambda label: bounds[label])
        for label in ordered:
            cumulative += members[label]
            lines.append(f'{base}_bucket{{le="{label}"}} {cumulative}')
        if bounds[ordered[-1]] != float("inf"):
            lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{base}_count {cumulative}")
        return lines
    base = metric_name(name, "_total")
    lines = [f"# TYPE {base} counter"]
    for label in sorted(members):
        lines.append(
            f'{base}{{bucket="{escape_label(label)}"}} {members[label]}')
    return lines


def render_prometheus(snapshot):
    """A :meth:`MetricsRegistry.snapshot` as Prometheus exposition text.

    Families of the same group render in sorted name order with sorted
    label values, so two renders of equal snapshots are byte-identical.
    Always ends with a trailing newline (scrape endpoints must).
    """
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        full = metric_name(name, "_total")
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        full = metric_name(name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {format_value(value)}")
    for name, members in snapshot.get("families", {}).items():
        full = metric_name(name, "_total")
        lines.append(f"# TYPE {full} counter")
        for key in sorted(members):
            lines.append(f'{full}{{key="{escape_label(key)}"}} '
                         f"{format_value(members[key])}")
    for name, members in snapshot.get("histograms", {}).items():
        lines.extend(_histogram_lines(name, members))
    return "\n".join(lines) + "\n" if lines else "\n"


def _parse_labels(raw):
    labels = {}
    cursor = 0
    while cursor < len(raw):
        match = _LABEL.match(raw, cursor)
        if match is None:
            raise ValueError(f"malformed label set {raw!r}")
        labels[match.group(1)] = (
            match.group(2).replace('\\"', '"').replace("\\n", "\n")
            .replace("\\\\", "\\"))
        cursor = match.end()
        if cursor < len(raw):
            if raw[cursor] != ",":
                raise ValueError(f"malformed label set {raw!r}")
            cursor += 1
    return labels


def parse_prometheus(text):
    """Parse exposition text into ``{name: {(label pairs): value}}``.

    Strict: every non-comment line must be a well-formed sample, every
    ``# TYPE`` must name a known type, and a name may be typed only
    once.  Raises ``ValueError`` with the offending line otherwise —
    this is the validity check CI's smoke job runs on a live scrape.
    """
    metrics = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(
                        f"line {lineno}: malformed TYPE comment")
                _, _, name, kind = parts
                if not _NAME_OK.match(name):
                    raise ValueError(
                        f"line {lineno}: bad metric name {name!r}")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown type {kind!r}")
                if name in types and types[name] != kind:
                    raise ValueError(
                        f"line {lineno}: {name!r} re-typed "
                        f"{types[name]!r} -> {kind!r}")
                types[name] = kind
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = float("inf")
        elif raw_value == "-Inf":
            value = float("-inf")
        else:
            try:
                value = float(raw_value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value "
                    f"{raw_value!r}") from None
        key = tuple(sorted(labels.items()))
        metrics.setdefault(name, {})[key] = value
    return {"metrics": metrics, "types": types}


def route_key(route):
    """A route as a metric-name-safe key (``/v1/doc`` → ``v1_doc``)."""
    stripped = route.strip("/")
    if not stripped:
        return "root"
    return re.sub(r"[^a-zA-Z0-9_]", "_", stripped)


def status_class(status):
    """``404`` → ``"4xx"`` (the status-class counter taxonomy)."""
    return f"{int(status) // 100}xx"


class ServiceTelemetry:
    """One server's request/ingest middleware state.

    Owns the :class:`SloTracker` and :class:`FlightRecorder`; metric
    updates flow through the process-global :mod:`repro.obs` context
    (no-ops while disabled, which is why ``repro serve`` activates an
    enabled context at boot).  ``clock`` feeds both the request timer
    and the SLO window, so an injected fake clock makes the whole
    telemetry plane deterministic.
    """

    def __init__(self, clock=time.perf_counter,
                 objectives=DEFAULT_OBJECTIVES, recorder_capacity=256):
        self.clock = clock
        self.slo = SloTracker(objectives, clock=clock)
        self.recorder = FlightRecorder(recorder_capacity)

    def observe_request(self, route, status, duration_s):
        """Fold one finished request into every telemetry surface."""
        ms = duration_s * 1000.0
        key = route_key(route)
        registry = obs.active_registry()
        if registry is not None:
            registry.histogram(f"http.latency_ms.{key}",
                               LATENCY_BUCKETS_MS).observe(ms)
            registry.family("http.requests").inc(status_class(status))
            registry.family("http.requests_by_route").inc(route)
        self.slo.record("http.latency_ms", ms)
        self.slo.record("http.errors",
                        1.0 if int(status) >= 500 else 0.0)
        self.recorder.record({
            "type": "request", "route": route, "status": int(status),
            "duration_ms": round(ms, 3)})

    def request_started(self):
        """Mark one request in flight; returns its start time."""
        registry = obs.active_registry()
        if registry is not None:
            registry.gauge("http.in_flight").add(1)
        return self.clock()

    def request_finished(self, route, status, started):
        """Close the in-flight window opened by :meth:`request_started`."""
        registry = obs.active_registry()
        if registry is not None:
            registry.gauge("http.in_flight").add(-1)
        self.observe_request(route, status, self.clock() - started)

    def update_ingest(self, ingester):
        """Refresh ingest-side SLO samples and the flight recorder.

        (The lag *gauges* themselves are kept current by the
        :class:`~repro.ingest.ingester.Ingester`.)
        """
        progress = ingester.status()
        lag = progress["windows_total"] - progress["windows_ingested"]
        self.slo.record("ingest.lag_windows", float(lag))
        self.recorder.record({
            "type": "ingest",
            "windows_ingested": progress["windows_ingested"],
            "windows_total": progress["windows_total"],
            "lag_windows": lag,
            "records_ingested": progress["records_ingested"],
        })
        return lag
