"""Nested, thread-safe tracing spans with a deterministic-clock hook.

A :class:`Span` measures one pipeline stage; spans nest, so a trace of a
full study run is a tree: ``cli.report`` over ``analysis.server`` over
``probe.all`` over nothing.  The tracer's clock is injectable
(``Tracer(clock=fake)``) which makes span durations exact in tests.

Threading model: each thread keeps its own span stack, so concurrent
spans on different threads never corrupt each other's nesting.  A span
opened on a worker thread with an empty local stack parents to the
innermost span open on the tracer's *home* thread (the thread that
created the tracer) — the coordinator-plus-workers shape every stage of
this pipeline has.  Workers that need a specific parent pass it
explicitly: ``tracer.span("probe.one", parent=batch_span)``.

Closed spans stream into the tracer's sink as JSONL events (see
:mod:`repro.obs.sink`), carrying ``id``/``parent`` references so the
tree is reconstructable from the flat file — this is what
``repro trace-summary`` consumes.
"""

import threading
import time


class Stopwatch:
    """A minimal span-alike: just elapsed time under an injectable clock.

    Used where a component wants span-style elapsed-time semantics (a
    live reading while running, frozen once stopped) without requiring
    an active tracer — e.g. ``ProbeStats.wall_seconds``, which must
    report elapsed time even when a run dies halfway.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.started = clock()
        self.ended = None

    def stop(self):
        if self.ended is None:
            self.ended = self._clock()
        return self.duration

    @property
    def duration(self):
        end = self.ended if self.ended is not None else self._clock()
        return end - self.started


class Span:
    """One timed, counted stage of the pipeline."""

    def __init__(self, tracer, name, span_id, parent):
        self.tracer = tracer
        self.name = name
        self.id = span_id
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.children = []
        self.counters = {}
        self.thread = threading.current_thread().name
        self.started = tracer.clock()
        self.ended = None

    @property
    def duration(self):
        """Elapsed seconds; live reading while the span is open."""
        end = self.ended if self.ended is not None else self.tracer.clock()
        return end - self.started

    @property
    def self_seconds(self):
        """Duration minus child durations (clamped: children on other
        threads may overlap the parent)."""
        return max(0.0, self.duration
                   - sum(child.duration for child in self.children))

    def incr(self, key, n=1):
        """Bump a per-span counter (attached to the span event)."""
        with self.tracer._lock:
            self.counters[key] = self.counters.get(key, 0) + n
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer._close(self, error=exc_type.__name__ if exc_type
                           else None)
        return False

    def to_event(self, error=None):
        event = {
            "type": "span",
            "id": self.id,
            "parent": None if self.parent is None else self.parent.id,
            "name": self.name,
            "depth": self.depth,
            "thread": self.thread,
            "started": round(self.started, 6),
            "duration": round(self.duration, 6),
        }
        if self.counters:
            event["counters"] = dict(sorted(self.counters.items()))
        if error is not None:
            event["error"] = error
        return event


class _NullSpan:
    """The do-nothing span the disabled context hands out."""

    name = None
    duration = 0.0
    self_seconds = 0.0

    def incr(self, key, n=1):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds the span tree; streams closed spans into a sink."""

    def __init__(self, clock=time.perf_counter, sink=None):
        self.clock = clock
        self.sink = sink
        self.spans = []        # every span, in open order
        self.roots = []        # depth-0 spans, in open order
        self._lock = threading.Lock()
        self._next_id = 0
        self._home_ident = threading.get_ident()
        self._home_stack = []
        self._tls = threading.local()

    def _stack(self):
        if threading.get_ident() == self._home_ident:
            return self._home_stack
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self):
        """This thread's innermost open span (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name, parent=None):
        """Open a nested span; use as a context manager."""
        stack = self._stack()
        if parent is None:
            if stack:
                parent = stack[-1]
            elif threading.get_ident() != self._home_ident:
                # Ambient fallback: nest under the coordinator thread.
                parent = self._home_stack[-1] if self._home_stack else None
        with self._lock:
            span = Span(self, name, self._next_id, parent)
            self._next_id += 1
            self.spans.append(span)
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        stack.append(span)
        return span

    def _close(self, span, error=None):
        span.ended = self.clock()
        stack = self._stack()
        if span in stack:
            # Tolerate out-of-order exits instead of corrupting nesting.
            del stack[stack.index(span):]
        if self.sink is not None:
            self.sink.emit(span.to_event(error=error))

    def finished(self):
        return [span for span in self.spans if span.ended is not None]

    def find(self, name):
        """All spans with ``name``, in open order."""
        return [span for span in self.spans if span.name == name]

    def stage_timings(self):
        """``name -> total seconds`` over closed spans (manifest food).

        Aggregates by name, so repeated stages (one span per analysis,
        several probe batches) sum naturally.
        """
        timings = {}
        for span in self.finished():
            timings[span.name] = timings.get(span.name, 0.0) \
                + span.duration
        return {name: round(seconds, 6)
                for name, seconds in sorted(timings.items())}
