"""Declarative SLO objectives evaluated over sliding sample windows.

An :class:`SloObjective` names one promise the service makes — "p99
query latency stays under 250 ms", "the error rate stays under 1%",
"ingest lag stays at zero windows" — and an :class:`SloTracker` holds
the recent samples each objective is judged on.  Evaluation is a pure
function of the samples inside the objective's sliding window under the
tracker's injectable clock, so a fake clock makes every verdict exact
in tests (the same determinism contract the tracer has).

Each objective resolves to one of three states:

- ``ok``        the aggregated value meets ``target``;
- ``degraded``  it misses ``target`` but stays within ``degraded``;
- ``failing``   it is beyond ``degraded`` (or missed ``target`` with no
  ``degraded`` threshold configured).

The tracker's overall status is the worst objective's status — the
one-word summary ``/healthz`` reports.
"""

import threading
import time
from collections import deque
from dataclasses import dataclass

#: evaluation states, best to worst (index = severity).
STATES = ("ok", "degraded", "failing")

#: aggregation kinds an objective may use over its window.
KINDS = ("p50", "p99", "mean", "max", "rate")


def _percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1,
               max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _aggregate(kind, values):
    if kind == "mean" or kind == "rate":
        return sum(values) / len(values)
    if kind == "max":
        return max(values)
    ordered = sorted(values)
    return _percentile(ordered, 0.50 if kind == "p50" else 0.99)


@dataclass(frozen=True)
class SloObjective:
    """One declarative service-level objective.

    Args:
        name: objective label (``query_latency_p99``).
        metric: the sample stream it is judged on (see
            :meth:`SloTracker.record`).
        kind: aggregation over the window — one of :data:`KINDS`
            (``rate`` is the mean of 0/1 samples).
        target: the ``ok`` threshold.
        comparison: ``"<="`` (value must stay at or below target) or
            ``">="``.
        degraded: optional second threshold bounding the ``degraded``
            band; beyond it the objective is ``failing``.  ``None``
            means any target miss is immediately ``failing``.
        window_seconds: sliding-window width samples are judged over.
    """

    name: str
    metric: str
    kind: str
    target: float
    comparison: str = "<="
    degraded: float = None
    window_seconds: float = 300.0

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.comparison not in ("<=", ">="):
            raise ValueError("comparison must be '<=' or '>='")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")

    def _meets(self, value, threshold):
        if self.comparison == "<=":
            return value <= threshold
        return value >= threshold

    def judge(self, values):
        """``(state, aggregated_value)`` for the window's samples.

        An empty window is ``ok`` (no evidence of a breach) with a
        ``None`` value — the caller surfaces ``samples: 0`` so a silent
        no-traffic state is distinguishable from a healthy one.
        """
        if not values:
            return "ok", None
        value = _aggregate(self.kind, values)
        if self._meets(value, self.target):
            return "ok", value
        if self.degraded is not None and self._meets(value,
                                                     self.degraded):
            return "degraded", value
        return "failing", value


def worst_state(states):
    """The most severe of ``states`` (``ok`` when empty)."""
    severity = max((STATES.index(state) for state in states),
                   default=0)
    return STATES[severity]


class SloTracker:
    """Sliding-window sample store + evaluator for a set of objectives."""

    def __init__(self, objectives, clock=time.monotonic):
        self.objectives = tuple(objectives)
        self.clock = clock
        self._lock = threading.Lock()
        self._samples = {}
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")
        #: widest window per metric — samples older than this are dead
        #: for every objective and can be pruned.
        self._horizon = {}
        for objective in self.objectives:
            self._horizon[objective.metric] = max(
                self._horizon.get(objective.metric, 0.0),
                objective.window_seconds)

    def record(self, metric, value):
        """Append one ``(now, value)`` sample to ``metric``'s stream.

        Samples for metrics no objective watches are dropped — the
        tracker's memory is bounded by the configured windows.
        """
        horizon = self._horizon.get(metric)
        if horizon is None:
            return
        now = self.clock()
        with self._lock:
            stream = self._samples.setdefault(metric, deque())
            stream.append((now, value))
            self._prune(stream, now - horizon)

    @staticmethod
    def _prune(stream, cutoff):
        while stream and stream[0][0] < cutoff:
            stream.popleft()

    def _window_values(self, objective, now):
        with self._lock:
            stream = self._samples.get(objective.metric, ())
            cutoff = now - objective.window_seconds
            return [value for when, value in stream if when >= cutoff]

    def evaluate(self):
        """Every objective's verdict plus the overall worst state.

        Returns ``{"status", "objectives": [{name, metric, kind,
        target, comparison, degraded, value, samples, status}, ...]}``
        — the ``GET /v1/slo`` payload.
        """
        now = self.clock()
        verdicts = []
        for objective in self.objectives:
            values = self._window_values(objective, now)
            state, value = objective.judge(values)
            verdicts.append({
                "name": objective.name,
                "metric": objective.metric,
                "kind": objective.kind,
                "target": objective.target,
                "comparison": objective.comparison,
                "degraded": objective.degraded,
                "window_seconds": objective.window_seconds,
                "samples": len(values),
                "value": None if value is None else round(value, 6),
                "status": state,
            })
        return {
            "status": worst_state(v["status"] for v in verdicts),
            "objectives": verdicts,
        }

    def summary(self):
        """Compact ``{"status", "objectives": {name: status}}`` view
        (the ``/healthz`` attachment)."""
        full = self.evaluate()
        return {
            "status": full["status"],
            "objectives": {v["name"]: v["status"]
                           for v in full["objectives"]},
        }
