"""Run manifests: the provenance record written alongside artifacts.

A measurement artifact without provenance is unreviewable — the paper's
numbers are only meaningful given the exact capture configuration.  A
:class:`RunManifest` pins everything needed to reproduce (and audit) the
artifact it sits next to:

- the world ``seed`` and the full ``StudyConfig`` content digest
  (:meth:`repro.config.StudyConfig.digest`),
- the package ``version``,
- per-stage wall-clock ``stage_timings`` from the tracer,
- the deterministic ``metrics`` snapshot,
- the CLI ``command`` and the ``outputs`` it wrote.

Manifests are written as ``<artifact>.manifest.json`` by every CLI
command that writes a file, and also emitted as the final event of a
``--trace`` JSONL stream.
"""

import json
import time
from dataclasses import asdict, dataclass, field

from repro.schema import strip_version, versioned


@dataclass
class RunManifest:
    """Provenance of one pipeline run (JSON round-trippable)."""

    command: str
    seed: int
    config_digest: str
    version: str
    started_at: float
    finished_at: float
    stage_timings: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    outputs: tuple = ()
    #: artifact-store traffic (dir, version, hit/miss/write stage lists)
    #: when the run used a cache; empty otherwise.
    cache: dict = field(default_factory=dict)
    #: paper-invariant check results (``repro.verify.invariants``) when
    #: the run evaluated them; empty otherwise.  Shape:
    #: ``{"ok": bool, "checks": [{name, ok, observed, expected}, ...]}``.
    invariants: dict = field(default_factory=dict)

    @property
    def elapsed_seconds(self):
        return round(self.finished_at - self.started_at, 6)

    @classmethod
    def from_run(cls, command, config, obs_ctx, outputs=(),
                 started_at=None, finished_at=None, store=None,
                 invariants=None):
        """Assemble a manifest from a config and a live obs context.

        ``config`` duck-types :class:`repro.config.StudyConfig` (needs
        ``.seed`` and ``.digest()``); ``obs_ctx`` may be disabled, in
        which case timings and metrics are empty.  ``store`` is an
        optional :class:`~repro.store.artifact.ArtifactStore` whose
        cache traffic (:meth:`provenance`) the manifest records;
        ``invariants`` an optional paper-invariant result summary
        (:func:`repro.verify.invariants.invariant_summary`).
        """
        from repro import __version__
        now = time.time()
        timings = {}
        metrics = {}
        if obs_ctx is not None and obs_ctx.enabled:
            timings = obs_ctx.tracer.stage_timings()
            metrics = obs_ctx.metrics.snapshot()
        return cls(
            command=command,
            seed=config.seed,
            config_digest=config.digest(),
            version=__version__,
            started_at=started_at if started_at is not None else now,
            finished_at=finished_at if finished_at is not None else now,
            stage_timings=timings,
            metrics=metrics,
            outputs=tuple(str(path) for path in outputs),
            cache=store.provenance() if store is not None else {},
            invariants=invariants if invariants is not None else {},
        )

    def to_json(self):
        payload = asdict(self)
        payload["outputs"] = list(self.outputs)
        payload["elapsed_seconds"] = self.elapsed_seconds
        return versioned(payload)

    @classmethod
    def from_json(cls, payload):
        fields = strip_version(payload)
        fields.pop("elapsed_seconds", None)
        fields["outputs"] = tuple(fields.get("outputs", ()))
        return cls(**fields)

    def write(self, path):
        """Write the manifest to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


def manifest_path_for(artifact_path):
    """Where the manifest for ``artifact_path`` lives."""
    return f"{artifact_path}.manifest.json"
