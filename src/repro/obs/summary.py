"""``repro trace-summary`` — render a trace JSONL file for humans.

Reconstructs the span tree from the flat event stream (spans carry
``id``/``parent`` references), aggregates per span name, and prints the
top names by *self time* — time spent in a stage excluding its children,
which is the number that tells you where an optimization PR should aim.
Also renders the metric table and manifest line when the stream carries
``metrics`` / ``manifest`` events (the CLI always appends them).
"""

from collections import defaultdict

from repro.obs.metrics import flatten_snapshot
from repro.obs.sink import read_events


def span_rows(events):
    """Aggregate span events into per-name rows.

    Returns rows sorted by self-time descending:
    ``{"name", "calls", "total", "self", "max_depth"}``.
    """
    spans = [e for e in events if e.get("type") == "span"]
    child_time = defaultdict(float)
    for event in spans:
        if event.get("parent") is not None:
            child_time[event["parent"]] += event.get("duration", 0.0)
    rows = {}
    for event in spans:
        row = rows.setdefault(event["name"], {
            "name": event["name"], "calls": 0, "total": 0.0,
            "self": 0.0, "max_depth": 0})
        duration = event.get("duration", 0.0)
        row["calls"] += 1
        row["total"] += duration
        row["self"] += max(0.0, duration - child_time.get(event["id"], 0.0))
        row["max_depth"] = max(row["max_depth"], event.get("depth", 0))
    return sorted(rows.values(), key=lambda r: (-r["self"], r["name"]))


def metric_table(snapshot, indent="  "):
    """The flattened metric snapshot as aligned text lines."""
    rows = flatten_snapshot(snapshot)
    if not rows:
        return []
    width = max(len(name) for name, _ in rows)
    return [f"{indent}{name:<{width}}  {value}" for name, value in rows]


def render_summary(events, top=15, source="trace"):
    """The whole trace, rendered as one human-readable block."""
    spans = [e for e in events if e.get("type") == "span"]
    lines = [f"== trace summary: {source} =="]
    if spans:
        max_depth = max(e.get("depth", 0) for e in spans)
        total = sum(e.get("duration", 0.0) for e in spans
                    if e.get("parent") is None)
        lines.append(f"spans: {len(spans)}  roots: "
                     f"{sum(1 for e in spans if e.get('parent') is None)}  "
                     f"max depth: {max_depth}  "
                     f"root wall: {total:.3f}s")
        rows = span_rows(events)
        width = max(len(r["name"]) for r in rows[:top])
        lines.append(f"top {min(top, len(rows))} span names by self-time:")
        lines.append(f"  {'name':<{width}}  calls  total(s)  self(s)")
        for row in rows[:top]:
            lines.append(f"  {row['name']:<{width}}  "
                         f"{row['calls']:>5}  {row['total']:>8.3f}  "
                         f"{row['self']:>7.3f}")
    else:
        lines.append("spans: 0")
    errors = [e for e in spans if e.get("error")]
    if errors:
        lines.append(f"spans with errors: "
                     + ", ".join(f"{e['name']} ({e['error']})"
                                 for e in errors))
    for event in events:
        if event.get("type") == "metrics":
            table = metric_table(event.get("snapshot", {}))
            if table:
                lines.append("metrics:")
                lines.extend(table)
    for event in events:
        if event.get("type") == "manifest":
            manifest = event.get("manifest", {})
            lines.append(
                f"manifest: command={manifest.get('command')} "
                f"seed={manifest.get('seed')} "
                f"config={str(manifest.get('config_digest'))[:12]} "
                f"version={manifest.get('version')}")
    return "\n".join(lines)


def summarize_file(path, top=15):
    """Load ``path`` and render it (the CLI entry point).

    Returns the rendered summary; raises ``OSError`` on an unreadable
    path and ``ValueError`` on empty or corrupt trace files — the CLI
    turns both into a one-line error and exit code 2.
    """
    events = read_events(path)
    if not events:
        raise ValueError(f"{path}: empty trace file (no events)")
    return render_summary(events, top=top, source=str(path))
