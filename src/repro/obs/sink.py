"""Structured-event sinks: where the tracer's span events go.

Events are plain dicts with a ``type`` key (``span`` / ``metrics`` /
``manifest``); :class:`JsonlSink` appends them to a file one JSON object
per line — the same artifact-friendly shape the rest of the repo uses
for captures and certificate summaries.  :class:`NullSink` swallows
events; it is both the disabled-mode default and the baseline for the
instrumentation-overhead benchmark.
"""

import json
import threading


class NullSink:
    """Discards every event (disabled mode / overhead baseline)."""

    def emit(self, event):
        pass

    def close(self):
        pass


class JsonlSink:
    """Thread-safe append-only JSONL event writer."""

    def __init__(self, path):
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "w", encoding="utf-8")
        self.events_written = 0

    def emit(self, event):
        line = json.dumps(event, sort_keys=True)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self.events_written += 1

    def close(self):
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_events(path):
    """Load a JSONL event file back into a list of dicts.

    Raises ``ValueError`` naming the file and line on corrupt JSONL
    (and on lines that are not JSON objects), so CLI consumers can show
    a one-line diagnosis instead of a traceback.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt JSONL "
                    f"({exc.msg})") from None
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(event).__name__}")
            events.append(event)
    return events
