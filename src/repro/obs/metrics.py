"""Named metrics: counters, gauges, histograms, and counter families.

A :class:`MetricsRegistry` is the single place a run's numbers live.
Every instrument is get-or-create by name, thread-safe, and cheap enough
to sit on the probe hot path (one lock acquisition per update).

Snapshots are *deterministic*: they contain only values that are a pure
function of the seed and config — counts, taxonomies, simulated-latency
buckets — never wall-clock readings (those belong to the tracer).  That
is what lets ``--jobs 4`` and ``--jobs 1`` produce byte-identical metric
snapshots, which tests and the run manifest rely on.
"""

import threading
from collections import Counter as _TallyCounter


class Counter:
    """A monotonically increasing named count."""

    kind = "counter"

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n=1):
        with self._lock:
            self._value += n

    @property
    def value(self):
        return self._value

    def snapshot(self):
        return self._value


class Gauge:
    """A named value that can move both ways (last write wins)."""

    kind = "gauge"

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value):
        with self._lock:
            self._value = value

    def add(self, delta):
        """Move the gauge by ``delta`` (in-flight style up/down counts)."""
        with self._lock:
            self._value += delta

    @property
    def value(self):
        return self._value

    def snapshot(self):
        return self._value


class Histogram:
    """Bucketed observations over ``((upper_bound, label), ...)``.

    An observation lands in the first bucket whose bound it is strictly
    below; the last bucket should use ``float("inf")`` as a catch-all.
    """

    kind = "histogram"

    def __init__(self, name, buckets):
        self.name = name
        self.buckets = tuple(buckets)
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._lock = threading.Lock()
        self._counts = _TallyCounter()

    def bucket_label(self, value):
        for bound, label in self.buckets:
            if value < bound:
                return label
        return self.buckets[-1][1]

    def observe(self, value, n=1):
        label = self.bucket_label(value)
        with self._lock:
            self._counts[label] += n

    @property
    def counts(self):
        """A Counter copy of ``label -> observation count``."""
        with self._lock:
            return _TallyCounter(self._counts)

    @property
    def total(self):
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self):
        with self._lock:
            return dict(sorted(self._counts.items()))


class CounterFamily:
    """A set of counters keyed by label (an outcome taxonomy)."""

    kind = "family"

    def __init__(self, name):
        self.name = name
        self._lock = threading.Lock()
        self._counts = _TallyCounter()

    def inc(self, key, n=1):
        with self._lock:
            self._counts[str(key)] += n

    def get(self, key):
        with self._lock:
            return self._counts[str(key)]

    def as_counter(self):
        """A ``collections.Counter`` copy (the legacy ProbeStats view)."""
        with self._lock:
            return _TallyCounter(self._counts)

    def snapshot(self):
        with self._lock:
            return dict(sorted(self._counts.items()))


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-requesting a name returns the existing instrument; requesting it
    as a different kind raises, which catches name collisions early.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments = {}

    def _get(self, name, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {kind}")
            return instrument

    def counter(self, name):
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name):
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name, buckets):
        return self._get(name, "histogram",
                         lambda: Histogram(name, buckets))

    def family(self, name):
        return self._get(name, "family", lambda: CounterFamily(name))

    def __len__(self):
        with self._lock:
            return len(self._instruments)

    def snapshot(self):
        """All instruments as one sorted, JSON-ready nested dict."""
        with self._lock:
            instruments = sorted(self._instruments.items())
        kinds = {"counter": "counters", "gauge": "gauges",
                 "histogram": "histograms", "family": "families"}
        out = {group: {} for group in kinds.values()}
        for name, instrument in instruments:
            out[kinds[instrument.kind]][name] = instrument.snapshot()
        return out


def flatten_snapshot(snapshot):
    """``snapshot()`` flattened to sorted ``(name, value)`` rows.

    Family and histogram members render as ``name{key}`` — the shape the
    CLI metric table and ``trace-summary`` print.
    """
    rows = []
    for name, value in snapshot.get("counters", {}).items():
        rows.append((name, value))
    for name, value in snapshot.get("gauges", {}).items():
        rows.append((name, value))
    for group in ("families", "histograms"):
        for name, members in snapshot.get(group, {}).items():
            for key, value in members.items():
                rows.append((f"{name}{{{key}}}", value))
    return sorted(rows)
