"""Flight recorder: a bounded ring buffer of recent telemetry events.

Long-running services need a way to answer "what just happened?"
without killing the process or replaying a multi-gigabyte trace.  A
:class:`FlightRecorder` keeps the last ``capacity`` events (spans,
requests, ingest ticks) in a deterministic-capacity ring buffer — old
events fall off the far end, memory stays bounded no matter how long
the server runs — and can render them as a JSON list
(``GET /v1/debug/recent``) or dump them to JSONL for offline
``repro trace-summary`` analysis.

The recorder speaks the sink protocol (``emit`` / ``close``), so it can
sit directly behind a :class:`~repro.obs.tracer.Tracer`; :class:`TeeSink`
fans one event stream out to several sinks (e.g. a JSONL file *and* the
recorder) so enabling the flight recorder never costs the trace file.
"""

import json
import threading
from collections import deque


class FlightRecorder:
    """Last-``capacity`` telemetry events, oldest evicted first."""

    def __init__(self, capacity=256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events = deque(maxlen=capacity)
        self._seq = 0

    def record(self, event):
        """Append one event dict (stamped with a monotonic ``seq``)."""
        with self._lock:
            stamped = dict(event)
            stamped["seq"] = self._seq
            self._seq += 1
            self._events.append(stamped)
        return stamped

    # -- sink protocol (so a tracer can stream spans straight in) -------------

    def emit(self, event):
        self.record(event)

    def close(self):
        pass

    # -- inspection -----------------------------------------------------------

    def __len__(self):
        with self._lock:
            return len(self._events)

    @property
    def events_seen(self):
        """Total events ever recorded (>= len when the ring wrapped)."""
        with self._lock:
            return self._seq

    def snapshot(self):
        """The buffered events, oldest first (copies, JSON-ready)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def dump_jsonl(self, path):
        """Write the buffered events as JSONL; returns the path."""
        events = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path


class TeeSink:
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks):
        self.sinks = tuple(sinks)

    def emit(self, event):
        for sink in self.sinks:
            sink.emit(event)

    def close(self):
        for sink in self.sinks:
            sink.close()
