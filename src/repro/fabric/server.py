"""The fabric HTTP server: lease protocol + blob store on one port.

Mirrors the shape of :mod:`repro.ingest.server`: all routing and
payload assembly live in :class:`FabricService.handle`, a pure
``(method, path, params, body) -> (status, payload)`` function that is
unit-testable without a socket; :func:`make_fabric_server` wraps it in
a ``ThreadingHTTPServer``.

Surface:

- ``POST /fabric/lease|heartbeat|complete|fail`` — the lease protocol
  (:mod:`repro.fabric.protocol`), JSON in, JSON out;
- ``GET /fabric/ping`` — liveness (also the remote store's
  reachability probe);
- ``GET /fabric/status`` — the coordinator's queue/lease/ledger view;
- ``GET /metrics[?format=json|prom]`` — the active :mod:`repro.obs`
  registry, Prometheus exposition on request (the CI smoke job scrapes
  ``repro_fabric_*`` through this);
- ``GET /blob/<key>`` / ``PUT /blob/<key>`` — the remote artifact
  store's raw ``.art`` blobs, validated server-side on upload
  (:meth:`~repro.store.artifact.ArtifactStore.write_raw`);
- ``GET /blob/stats`` — the blob store's aggregate statistics.

Boot activates an enabled observability context if none is active, so
``/metrics`` never answers with an empty snapshot.
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.fabric.protocol import ProtocolError
from repro.obs.telemetry import render_prometheus

#: maximum accepted request body (a pickled unit result or one blob).
MAX_BODY_BYTES = 256 * 1024 * 1024

#: content keys are sha256 hex digests.
_KEY_LENGTH = 64


class RawBytes:
    """A non-JSON response body (a raw ``.art`` blob)."""

    def __init__(self, blob):
        self.blob = blob


def _is_key(text):
    return len(text) == _KEY_LENGTH \
        and all(ch in "0123456789abcdef" for ch in text)


class FabricService:
    """Routing + payload assembly for the fabric server."""

    def __init__(self, coordinator, blob_store=None):
        self.coordinator = coordinator
        self.blob_store = blob_store

    # -- routing --------------------------------------------------------------

    def handle(self, method, path, params=None, body=None):
        """Answer one request; returns ``(status, payload)``.

        ``payload`` is a JSON-serializable dict, or a :class:`RawBytes`
        for blob downloads.  Protocol violations surface as their HTTP
        status with a one-line ``{"error": ...}`` body.
        """
        params = params or {}
        try:
            if path.startswith("/blob/"):
                return self._blob(method, path[len("/blob/"):], body)
            if method == "GET":
                return self._get(path, params)
            if method == "POST":
                return self._post(path, body)
            raise ProtocolError(405, f"method {method} not allowed")
        except ProtocolError as exc:
            obs.incr("fabric.errors", key=str(exc.status))
            return exc.status, {"error": exc.message}

    def _get(self, path, params):
        if path == "/fabric/ping":
            return 200, {"ok": True,
                         "campaign_id": self.coordinator.index
                         .campaign_id}
        if path == "/fabric/status":
            return 200, self.coordinator.status()
        if path == "/metrics":
            return self._metrics(params)
        raise ProtocolError(404, f"unknown route {path!r}")

    def _post(self, path, body):
        payload = self._json_body(body)
        if path == "/fabric/lease":
            return 200, self.coordinator.lease(payload.get("worker"))
        if path == "/fabric/heartbeat":
            return 200, self.coordinator.heartbeat(
                self._token(payload))
        if path == "/fabric/complete":
            return 200, self.coordinator.complete(
                self._token(payload), payload.get("result"))
        if path == "/fabric/fail":
            return 200, self.coordinator.fail(
                self._token(payload), payload.get("error", "unknown"))
        raise ProtocolError(404, f"unknown route {path!r}")

    @staticmethod
    def _json_body(body):
        try:
            payload = json.loads((body or b"").decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ProtocolError(400, "request body is not valid JSON") \
                from None
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON "
                                     "object")
        return payload

    @staticmethod
    def _token(payload):
        token = payload.get("lease")
        if not isinstance(token, str) or not token:
            raise ProtocolError(400, "request needs a lease token")
        return token

    # -- metrics --------------------------------------------------------------

    @staticmethod
    def _metrics(params):
        fmt = (params.get("format") or ["json"])[-1]
        if fmt not in ("json", "prom"):
            raise ProtocolError(400, f"unknown metrics format {fmt!r} "
                                     f"(expected json or prom)")
        ctx = obs.current()
        snapshot = ctx.metrics.snapshot() if ctx.enabled else {}
        if fmt == "prom":
            return 200, RawBytes(
                render_prometheus(snapshot).encode("utf-8"))
        return 200, {"enabled": ctx.enabled, "metrics": snapshot}

    # -- the blob store -------------------------------------------------------

    def _blob(self, method, rest, body):
        if self.blob_store is None:
            raise ProtocolError(503, "this coordinator serves no blob "
                                     "store")
        if method == "GET" and rest == "stats":
            return 200, self.blob_store.stats()
        if not _is_key(rest):
            raise ProtocolError(400, f"malformed blob key {rest!r}")
        if method == "GET":
            raw = self.blob_store.read_raw(rest)
            if raw is None:
                obs.incr("fabric.blob_misses")
                return 404, {"error": f"no blob {rest}"}
            obs.incr("fabric.blob_reads")
            return 200, RawBytes(raw)
        if method == "PUT":
            if not self.blob_store.write_raw(rest, body or b""):
                raise ProtocolError(
                    400, "blob rejected: bad magic, checksum "
                         "mismatch, or key/header mismatch")
            obs.incr("fabric.blob_writes")
            return 200, {"ok": True, "key": rest}
        raise ProtocolError(405, f"method {method} not allowed on "
                                 f"/blob/")


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`FabricService.handle`."""

    #: set by :func:`make_fabric_server`.
    service = None
    protocol_version = "HTTP/1.1"

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        return self.rfile.read(length) if length else b""

    def _dispatch(self, method):
        parsed = urlparse(self.path)
        body = self._body()
        if body is None:
            status, payload = 413, {"error": "request body too large"}
        else:
            status, payload = self.service.handle(
                method, parsed.path,
                parse_qs(parsed.query, keep_blank_values=True), body)
        if isinstance(payload, RawBytes):
            data = payload.blob
            content_type = "application/octet-stream"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self):  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 (http.server API)
        self._dispatch("POST")

    def do_PUT(self):  # noqa: N802 (http.server API)
        self._dispatch("PUT")

    def log_message(self, format, *args):
        """Suppress per-request stderr noise; obs counters cover it."""


def make_fabric_server(coordinator, blob_store=None, host="127.0.0.1",
                       port=0):
    """A ``ThreadingHTTPServer`` for one campaign (port 0: ephemeral).

    Returns ``(server, service)``; the caller owns
    ``server.serve_forever()`` / ``server.shutdown()``.
    """
    obs.ensure_enabled()
    service = FabricService(coordinator, blob_store=blob_store)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler), service
