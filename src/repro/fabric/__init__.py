"""``repro.fabric`` — the distributed campaign fabric.

Shards a sweep campaign across worker processes (or machines) without
relaxing anything the campaign ledger already guarantees: exactly-once
results per unit, resumability from any interruption, and per-config
digests byte-identical to the serial path.

The pieces:

- :class:`~repro.fabric.coordinator.FabricCoordinator` — turns a
  campaign ledger's pending units into expiring leases
  (lease/heartbeat/complete/fail); a worker that dies simply stops
  heartbeating and its unit is re-leased to someone else — work
  stealing for free;
- :func:`~repro.fabric.server.make_fabric_server` — the stdlib HTTP
  face of one coordinator, plus the remote artifact store's blob
  endpoints and a Prometheus-scrapable ``/metrics``;
- :class:`~repro.fabric.worker.FabricWorker` /
  :func:`~repro.fabric.worker.worker_main` — the claim/run/upload
  loop, running the exact per-unit payload the local backend runs;
- the remote store client itself lives in :mod:`repro.store.remote`.

CLI: ``repro fabric serve|worker|status`` for explicit multi-machine
operation, or ``repro sweep run --backend cluster`` to run the whole
topology (coordinator + N worker processes) on one host.
"""

from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.protocol import DEFAULT_LEASE_SECONDS, \
    DEFAULT_MAX_ATTEMPTS, ProtocolError
from repro.fabric.server import FabricService, make_fabric_server
from repro.fabric.worker import FabricWorker, worker_main

__all__ = ["DEFAULT_LEASE_SECONDS", "DEFAULT_MAX_ATTEMPTS",
           "FabricCoordinator", "FabricService", "FabricWorker",
           "ProtocolError", "make_fabric_server", "worker_main"]
