"""The campaign coordinator: leases over a ledger.

:class:`FabricCoordinator` owns one
:class:`~repro.store.campaign.CampaignIndex` and hands its pending
units out as expiring leases.  It is transport-free — a plain
thread-safe object the HTTP server (:mod:`repro.fabric.server`) and the
in-process tests drive directly — and deliberately stateless beyond the
ledger plus the live lease table:

- **pending** = in campaign order, not completed, not actively leased,
  and under the attempt budget;
- a lease is ``(token, unit key, worker, deadline)``; every heartbeat
  pushes the deadline out, and expiry is evaluated *lazily* on each
  protocol call (no reaper thread — deterministic under an injected
  clock);
- ``complete`` is idempotent and last-writer-loses: the first result
  for a key is recorded in the ledger, a late duplicate (from a worker
  whose lease was stolen mid-run) is acknowledged but changes nothing,
  so the ledger holds exactly one result per unit no matter how many
  workers raced on it;
- a unit whose attempts run out is recorded as failed and leaves the
  queue; ``sweep resume`` retries it later exactly as the local
  backend would.

Every transition feeds the ``fabric.*`` metric namespace: lease grants
and steals, heartbeats, completions (with a lease-hold-time histogram),
duplicates, failures, and expiries — the ``/fabric/status`` endpoint
and the CI smoke job read these back through the standard exposition
path.
"""

import threading
import time
import uuid

from repro import obs
from repro.fabric.protocol import DEFAULT_LEASE_SECONDS, \
    DEFAULT_MAX_ATTEMPTS, LEASE_HOLD_BUCKETS_MS, ProtocolError


class _Lease:
    """One live claim on one unit."""

    __slots__ = ("token", "key", "worker", "deadline", "granted_at")

    def __init__(self, token, key, worker, deadline, granted_at):
        self.token = token
        self.key = key
        self.worker = worker
        self.deadline = deadline
        self.granted_at = granted_at


class FabricCoordinator:
    """Thread-safe lease scheduling over one campaign ledger.

    Args:
        index: the campaign's :class:`CampaignIndex` (already created).
        store_spec: the *resolved* store-backend spec every lease hands
            to its worker (``None`` for no caching).
        lease_seconds: heartbeat deadline for each lease.
        max_attempts: lease grants per unit before it is declared
            failed.
        clock: monotonic seconds source (tests inject a fake).
    """

    def __init__(self, index, store_spec=None,
                 lease_seconds=DEFAULT_LEASE_SECONDS,
                 max_attempts=DEFAULT_MAX_ATTEMPTS,
                 clock=time.monotonic):
        self.index = index
        self.store_spec = store_spec
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = max(1, int(max_attempts))
        self.clock = clock
        self._lock = threading.Lock()
        #: live leases by token.
        self._leases = {}
        #: every token ever granted -> unit key (for late duplicates).
        self._token_keys = {}
        #: lease grants per unit key (the attempt budget).
        self._attempts = {}
        self._started_at = clock()

    # -- lease bookkeeping (call with the lock held) --------------------------

    def _expire_stale(self, now):
        for token in [token for token, lease in self._leases.items()
                      if lease.deadline <= now]:
            lease = self._leases.pop(token)
            obs.incr("fabric.lease_expired", key=lease.worker)

    def _leased_keys(self):
        return {lease.key for lease in self._leases.values()}

    def _pending_units(self):
        completed = self.index.completed
        leased = self._leased_keys()
        return [unit for unit in self.index.units
                if unit["key"] not in completed
                and unit["key"] not in leased
                and self._attempts.get(unit["key"], 0)
                < self.max_attempts]

    # -- the protocol ---------------------------------------------------------

    def lease(self, worker):
        """Claim the next pending unit for ``worker``.

        Returns the lease payload, or ``{"unit": None, "done": bool}``
        when nothing is currently claimable (``done`` distinguishes "the
        campaign is finished" from "everything is leased out — poll
        again").
        """
        worker = str(worker or "anonymous")
        now = self.clock()
        with self._lock:
            self._expire_stale(now)
            pending = self._pending_units()
            if not pending:
                return {"unit": None, "done": self._done_locked()}
            unit = pending[0]
            token = uuid.uuid4().hex
            self._leases[token] = _Lease(
                token, unit["key"], worker,
                now + self.lease_seconds, now)
            self._token_keys[token] = unit["key"]
            self._attempts[unit["key"]] = \
                self._attempts.get(unit["key"], 0) + 1
            attempt = self._attempts[unit["key"]]
        obs.incr("fabric.leases", key=worker)
        if attempt > 1:
            obs.incr("fabric.steals")
        return {"lease": token, "unit": dict(unit),
                "store": self.store_spec,
                "lease_seconds": self.lease_seconds,
                "attempt": attempt}

    def heartbeat(self, token):
        """Extend a live lease; 410 when it already expired."""
        now = self.clock()
        with self._lock:
            self._expire_stale(now)
            lease = self._leases.get(token)
            if lease is None:
                if token not in self._token_keys:
                    raise ProtocolError(404, f"unknown lease {token!r}")
                raise ProtocolError(
                    410, "lease expired; the unit was returned to the "
                         "queue")
            lease.deadline = now + self.lease_seconds
        obs.incr("fabric.heartbeats")
        return {"ok": True, "lease_seconds": self.lease_seconds}

    def complete(self, token, result):
        """Record one finished unit; idempotent across stolen leases."""
        if not isinstance(result, dict) or "key" not in result:
            raise ProtocolError(400, "complete needs a result payload "
                                     "with a unit key")
        now = self.clock()
        with self._lock:
            self._expire_stale(now)
            key = self._token_keys.get(token)
            if key is None:
                raise ProtocolError(404, f"unknown lease {token!r}")
            if result["key"] != key:
                raise ProtocolError(
                    400, f"lease {token!r} covers unit {key}, not "
                         f"{result['key']}")
            lease = self._leases.pop(token, None)
            if key in self.index.completed:
                obs.incr("fabric.duplicates")
                return {"ok": True, "duplicate": True}
            # A result from an expired lease is still correct work —
            # content-addressed digests make it interchangeable with
            # whatever a stealing worker would produce — so accept it.
            self.index.complete(key, result)
        obs.incr("fabric.completed")
        if lease is not None:
            self._observe_hold(now - lease.granted_at)
        return {"ok": True, "duplicate": False}

    def fail(self, token, error):
        """Record one failed attempt; the unit stays re-leasable."""
        now = self.clock()
        with self._lock:
            self._expire_stale(now)
            key = self._token_keys.get(token)
            if key is None:
                raise ProtocolError(404, f"unknown lease {token!r}")
            self._leases.pop(token, None)
            if key not in self.index.completed:
                self.index.fail(key, error)
        obs.incr("fabric.failures")
        return {"ok": True, "attempts": self._attempts.get(key, 0),
                "exhausted": self._attempts.get(key, 0)
                >= self.max_attempts}

    # -- progress -------------------------------------------------------------

    def _done_locked(self):
        completed = self.index.completed
        leased = self._leased_keys()
        for unit in self.index.units:
            key = unit["key"]
            if key in completed:
                continue
            if key in leased:
                return False
            if self._attempts.get(key, 0) < self.max_attempts:
                return False
        return True

    def done(self):
        """Whether no unit can make further progress here."""
        with self._lock:
            self._expire_stale(self.clock())
            return self._done_locked()

    def status(self):
        """The ``/fabric/status`` payload: queue + lease + ledger state."""
        now = self.clock()
        with self._lock:
            self._expire_stale(now)
            units = self.index.units
            completed = self.index.completed
            leases = [{
                "worker": lease.worker,
                "unit": lease.key,
                "expires_in": round(lease.deadline - now, 3),
            } for lease in self._leases.values()]
            exhausted = [key for key, count in self._attempts.items()
                         if count >= self.max_attempts
                         and key not in completed]
            status = {
                "campaign_id": self.index.campaign_id,
                "stage": self.index.stage,
                "units": len(units),
                "completed": len(completed),
                "failed": len(self.index.failed),
                "pending": len(self._pending_units()),
                "leased": sorted(leases, key=lambda l: l["unit"]),
                "exhausted": sorted(exhausted),
                "done": self._done_locked(),
                "lease_seconds": self.lease_seconds,
                "max_attempts": self.max_attempts,
                "uptime_seconds": round(now - self._started_at, 3),
                "store": self.store_spec,
            }
        obs.gauge("fabric.pending", status["pending"])
        obs.gauge("fabric.leased", len(status["leased"]))
        return status

    def _observe_hold(self, seconds):
        registry = obs.active_registry()
        if registry is not None:
            registry.histogram("fabric.lease_hold_ms",
                               LEASE_HOLD_BUCKETS_MS).observe(
                                   seconds * 1000.0)
