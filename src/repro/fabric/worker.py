"""The fabric worker: claim a lease, run the unit, upload the result.

:class:`FabricWorker` is the client half of the lease protocol.  Its
loop is deliberately dumb — all scheduling intelligence lives in the
coordinator:

1. ``POST /fabric/lease``; if nothing is claimable, poll until the
   coordinator reports the campaign done;
2. build the same JSON payload the local
   :class:`~repro.sweep.runner.SweepRunner` builds (unit spec + the
   resolved store-backend spec) and run the standard per-unit function
   (:func:`repro.sweep.worker.run_unit`) — the execution path is
   *identical* to the local backend from the payload inward, which is
   what makes per-config digests byte-identical across backends;
3. heartbeat on a side thread at a third of the lease interval; a 410
   means the lease expired and the unit was stolen — the worker still
   finishes and uploads (content-addressed results are
   interchangeable; the coordinator keeps the first and counts the
   other as a duplicate);
4. ``POST /fabric/complete`` (or ``/fabric/fail`` with the error
   string).

``jobs > 1`` runs that loop on several claim threads inside one
process.  A study's cost is part CPU, part modeled latency sleeps, so
two claim threads overlap one thread's sleeps with the other's compute
— that (not the GIL-bound CPU) is where the cluster backend's speedup
over a single process comes from.

``worker_main`` is the top-level entry a spawned worker process (or
``repro fabric worker``) runs; it must stay importable from a clean
interpreter.
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro import obs
from repro.sweep.worker import run_unit


def _derived_cache_dir(store_spec):
    """The legacy ``cache_dir`` field for payloads (local specs only)."""
    if store_spec and store_spec.get("backend") == "local":
        return store_spec.get("dir")
    return None


class _Heartbeat(threading.Thread):
    """Pings one lease until stopped; flags the lease stolen on 410."""

    def __init__(self, worker, token, interval):
        super().__init__(daemon=True)
        self.worker = worker
        self.token = token
        self.interval = max(0.05, interval)
        self.stopped = threading.Event()
        self.stolen = threading.Event()

    def run(self):
        while not self.stopped.wait(self.interval):
            status, _ = self.worker.post("/fabric/heartbeat",
                                         {"lease": self.token})
            if status == 410:
                self.stolen.set()
                obs.incr("fabric.worker_stolen")
                return
            if status == 404:
                return

    def stop(self):
        self.stopped.set()


class FabricWorker:
    """One worker process's claim/run/upload loop.

    Args:
        base_url: the coordinator's base URL.
        worker_id: how this worker identifies itself in leases.
        runner: the per-unit function (tests inject stubs).
        poll_seconds: sleep between lease attempts when the queue is
            drained but the campaign is not done.
        max_units: stop after completing this many units (None: run
            until the campaign is done).
        jobs: concurrent claim threads inside this worker.
        heartbeat: disable to simulate a dead worker (tests).
        max_errors: consecutive transport failures before giving up.
    """

    def __init__(self, base_url, worker_id="worker", runner=run_unit,
                 poll_seconds=0.25, max_units=None, jobs=1,
                 heartbeat=True, max_errors=20, timeout=10.0):
        self.base_url = str(base_url).rstrip("/")
        self.worker_id = str(worker_id)
        self.runner = runner
        self.poll_seconds = poll_seconds
        self.max_units = max_units
        self.jobs = max(1, int(jobs))
        self.heartbeat = heartbeat
        self.max_errors = max_errors
        self.timeout = timeout
        self.stop_event = threading.Event()
        self._lock = threading.Lock()
        #: unit names completed / failed / completed-after-steal here.
        self.ran = []
        self.failed = []
        self.stolen = []

    # -- transport ------------------------------------------------------------

    def post(self, path, payload):
        """POST one JSON message; returns ``(status, payload dict)``.

        Transport failure returns ``(None, {})`` — the loop counts
        those and gives up only after ``max_errors`` in a row.
        """
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                return resp.status, json.loads(
                    resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
            except Exception:
                detail = {}
            return exc.code, detail
        except OSError:
            return None, {}

    # -- one unit -------------------------------------------------------------

    def _payload(self, lease):
        store_spec = lease.get("store")
        return {"unit": lease["unit"],
                "store": store_spec,
                "cache_dir": _derived_cache_dir(store_spec)}

    def _run_lease(self, lease):
        token = lease["lease"]
        unit = lease["unit"]
        name = unit.get("name", unit["key"][:12])
        heart = None
        if self.heartbeat:
            heart = _Heartbeat(self, token,
                               lease.get("lease_seconds", 30.0) / 3.0)
            heart.start()
        try:
            with obs.span(f"fabric.unit.{name}"):
                result = self.runner(self._payload(lease))
        except Exception as exc:
            if heart is not None:
                heart.stop()
            self.post("/fabric/fail",
                      {"lease": token,
                       "error": f"{type(exc).__name__}: {exc}"})
            with self._lock:
                self.failed.append(name)
            return True
        if heart is not None:
            heart.stop()
        status, reply = self.post("/fabric/complete",
                                  {"lease": token, "result": result})
        with self._lock:
            if heart is not None and heart.stolen.is_set() \
                    or (status == 200 and reply.get("duplicate")):
                self.stolen.append(name)
            else:
                self.ran.append(name)
        return status is not None

    # -- the loop -------------------------------------------------------------

    def _loop(self):
        errors = 0
        while not self.stop_event.is_set():
            with self._lock:
                finished = len(self.ran) + len(self.stolen)
            if self.max_units is not None \
                    and finished >= self.max_units:
                return
            status, lease = self.post("/fabric/lease",
                                      {"worker": self.worker_id})
            if status is None:
                errors += 1
                if errors >= self.max_errors:
                    return
                time.sleep(self.poll_seconds)
                continue
            errors = 0
            if status != 200:
                return
            if lease.get("unit") is None:
                if lease.get("done"):
                    return
                time.sleep(self.poll_seconds)
                continue
            self._run_lease(lease)

    def run(self):
        """Drain the queue; returns this worker's summary dict."""
        obs.ensure_enabled()
        if self.jobs == 1:
            self._loop()
        else:
            threads = [threading.Thread(target=self._loop, daemon=True)
                       for _ in range(self.jobs)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        with self._lock:
            return {"worker": self.worker_id, "ran": list(self.ran),
                    "failed": list(self.failed),
                    "stolen": list(self.stolen)}

    def stop(self):
        self.stop_event.set()


def worker_main(base_url, worker_id="worker", jobs=1, max_units=None,
                poll_seconds=0.25):
    """Top-level worker entry (spawn-importable).

    Pings the coordinator before looping, so a worker pointed at a dead
    endpoint fails fast with a one-line error instead of silently
    polling ``max_errors`` times.
    """
    base_url = str(base_url).rstrip("/")
    try:
        with urllib.request.urlopen(f"{base_url}/fabric/ping",
                                    timeout=10.0):
            pass
    except OSError:
        raise ConnectionError(
            f"no fabric coordinator at {base_url}") from None
    worker = FabricWorker(base_url, worker_id=worker_id, jobs=jobs,
                          max_units=max_units,
                          poll_seconds=poll_seconds)
    return worker.run()


__all__ = ["FabricWorker", "worker_main"]
