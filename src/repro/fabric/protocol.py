"""The fabric wire protocol: constants, errors, and metric buckets.

The coordinator and its workers speak a four-verb JSON protocol over
HTTP (all POST, all ``application/json``):

- ``/fabric/lease`` — ``{"worker": id}`` → one unit lease
  (``{"lease": token, "unit": spec, "store": resolved spec,
  "lease_seconds": s}``), ``{"unit": null, "done": bool}`` when the
  queue is empty;
- ``/fabric/heartbeat`` — ``{"lease": token}`` extends a live lease;
  HTTP 410 means the lease already expired (the unit went back to the
  queue — stop working on it);
- ``/fabric/complete`` — ``{"lease": token, "result": payload}``
  records a finished unit in the campaign ledger;
- ``/fabric/fail`` — ``{"lease": token, "error": str}`` records a
  failure (the unit stays re-leasable until its attempts run out).

Plus two GETs: ``/fabric/ping`` (liveness, also the remote store's
reachability probe) and ``/fabric/status`` (queue/lease/ledger
telemetry).  The blob store rides on the same server under ``/blob/``
(:mod:`repro.store.remote`).

Lease expiry is the whole fault model: a worker that dies, hangs, or
partitions simply stops heartbeating, its lease lapses, and the next
``lease`` call hands the unit to someone else — work stealing for free,
with the ledger's exactly-once bookkeeping (first ``complete`` wins,
late duplicates acknowledged but not re-recorded) keeping digests
identical to the serial path.
"""

#: how long a lease lives without a heartbeat.
DEFAULT_LEASE_SECONDS = 30.0

#: how many times a unit may be leased before it is declared failed.
DEFAULT_MAX_ATTEMPTS = 3

#: lease-hold-time histogram buckets (milliseconds; a unit holds its
#: lease for the full study run, so the scale is seconds-to-minutes).
LEASE_HOLD_BUCKETS_MS = (
    (50.0, "50"), (250.0, "250"), (1000.0, "1000"), (5000.0, "5000"),
    (15000.0, "15000"), (30000.0, "30000"), (60000.0, "60000"),
    (120000.0, "120000"), (300000.0, "300000"), (float("inf"), "+Inf"),
)


class ProtocolError(Exception):
    """A fabric protocol violation (status + one-line message)."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = int(status)
        self.message = message


__all__ = ["DEFAULT_LEASE_SECONDS", "DEFAULT_MAX_ATTEMPTS",
           "LEASE_HOLD_BUCKETS_MS", "ProtocolError"]
