"""The process-parallel, resumable campaign runner.

A campaign is N independent :class:`~repro.sweep.grid.SweepUnit`\\ s.
Each unit is a full study — world generation, probing, analysis — whose
cost is CPU-bound Python, so the thread pools used elsewhere in the
repository (probe engine, analysis scheduler) cannot scale a *sweep*
past the GIL.  :class:`SweepRunner` therefore fans units across a
``ProcessPoolExecutor`` (spawn context: clean workers, identical
behavior across platforms, and the same boundary the pickling
regression tests guard), one study per worker process.

Resumability: every completed unit is recorded in the
:class:`~repro.store.campaign.CampaignIndex` ledger *as it finishes*
(atomic rewrite), so killing a campaign loses at most the units still
in flight.  ``run(resume=True)`` — or a re-run over the same out
directory — consults the ledger and the units' content keys (built on
``StudyConfig.artifact_digest``) and re-executes only incomplete
configs.  Workers additionally share the campaign's
:class:`~repro.store.artifact.ArtifactStore`, so even a unit killed
mid-flight resumes from its cached stages rather than from scratch.

Observability: the campaign runs inside a ``sweep.campaign`` span; each
unit's completion bumps ``sweep.completed`` / ``sweep.failed`` (and
skips bump ``sweep.skipped``), with per-unit spans
(``sweep.unit.<name>``) recording wall seconds — real execution time
inline, completion-processing time under the pool, where the worker's
own per-stage timings travel back inside the result payload.
"""

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from repro import obs
from repro.store.backend import local_spec
from repro.store.campaign import CampaignIndex, campaign_id_for
from repro.sweep.grid import SweepUnit
from repro.sweep.worker import run_unit

#: execution backends ``SweepRunner`` understands.
BACKENDS = ("local", "cluster")


@dataclass
class CampaignResult:
    """What one ``SweepRunner.run`` actually did."""

    index: CampaignIndex
    #: unit names executed this run, in completion order.
    ran: list = field(default_factory=list)
    #: unit names skipped because the ledger already had their results.
    skipped: list = field(default_factory=list)
    #: ``(unit name, error string)`` pairs that failed this run.
    failed: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failed

    def results(self):
        """Completed result payloads, in campaign unit order."""
        return self.index.results()


class SweepRunner:
    """Executes a campaign of sweep units, process-parallel and resumable.

    Args:
        units: the campaign's :class:`SweepUnit`\\ s (ignored on
            ``run(resume=True)``, which reloads them from the ledger).
        index_path: where the campaign ledger lives.
        workers: worker processes; 1 executes inline (the serial
            reference path — byte-identical digests, no subprocesses).
        cache_dir: optional shared artifact-store root every worker
            warms and reads.
        unit_runner: the per-unit function (tests inject stubs); only
            honored inline — the pool and the cluster always run the
            real :func:`repro.sweep.worker.run_unit`, which must stay
            importable from a spawned process.
        mp_context: ``multiprocessing`` start-method name for the pool.
        backend: ``local`` (this process / a process pool) or
            ``cluster`` (a fabric coordinator + spawned fabric worker
            processes on this host; see :mod:`repro.fabric`).
        store: optional store-backend spec
            (:mod:`repro.store.backend`); defaults to a local spec over
            ``cache_dir``.
        lease_seconds: cluster lease/heartbeat interval (None: fabric
            default).
        worker_jobs: claim threads per cluster worker process — a
            study's modeled-latency sleeps overlap another thread's
            compute, so 2 is the sweet spot per core-bound process.
    """

    def __init__(self, units=None, index_path=None, workers=1,
                 cache_dir=None, unit_runner=run_unit,
                 mp_context="spawn", backend="local", store=None,
                 lease_seconds=None, worker_jobs=2):
        if backend not in BACKENDS:
            raise ValueError(f"unknown sweep backend {backend!r} "
                             f"(expected one of {BACKENDS})")
        self.units = tuple(units) if units is not None else ()
        self.index_path = index_path
        self.workers = max(1, int(workers))
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.unit_runner = unit_runner
        self.mp_context = mp_context
        self.backend = backend
        self.store_spec = store
        self.lease_seconds = lease_seconds
        self.worker_jobs = max(1, int(worker_jobs))

    # -- ledger handling ------------------------------------------------------

    def _open_index(self, resume):
        if resume:
            index = CampaignIndex.load(self.index_path)
            if self.cache_dir is None and index.cache_dir:
                self.cache_dir = index.cache_dir
            if self.store_spec is None:
                self.store_spec = index.store_spec
            return index, [SweepUnit.from_json(spec)
                           for spec in index.units]
        units = list(self.units)
        if not units:
            raise ValueError("a fresh campaign needs at least one unit")
        if self.store_spec is None:
            self.store_spec = local_spec(self.cache_dir)
        specs = [unit.to_json() for unit in units]
        keys = [spec["key"] for spec in specs]
        stage = units[0].stage
        try:
            index = CampaignIndex.load(self.index_path)
        except ValueError:
            index = None
        if index is not None and index.matches(keys):
            # Same campaign re-run: keep the ledger, skip completed.
            return index, units
        index = CampaignIndex.create(self.index_path, specs, stage,
                                     cache_dir=self.cache_dir,
                                     store=self.store_spec)
        return index, units

    # -- execution ------------------------------------------------------------

    def _payload(self, unit):
        return {"unit": unit.to_json(), "store": self.store_spec,
                "cache_dir": self.cache_dir}

    def _finish(self, index, outcome, unit, resolve):
        """Record one unit's outcome (result or failure) in the ledger."""
        with obs.span(f"sweep.unit.{unit.name}") as span:
            try:
                result = resolve()
            except Exception as exc:  # a unit failure, not the campaign's
                error = f"{type(exc).__name__}: {exc}"
                index.fail(unit.key(), error)
                obs.incr("sweep.failed")
                outcome.failed.append((unit.name, error))
                return
            span.incr("wall_ms",
                      int(1000 * result.get("wall_seconds", 0)))
        index.complete(unit.key(), result)
        obs.incr("sweep.completed")
        outcome.ran.append(unit.name)

    def _run_inline(self, index, pending, outcome):
        for unit in pending:
            self._finish(index, outcome, unit,
                         lambda u=unit: self.unit_runner(
                             self._payload(u)))

    def _run_pooled(self, index, pending, outcome):
        import multiprocessing
        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            running = {pool.submit(run_unit, self._payload(unit)): unit
                       for unit in pending}
            while running:
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    unit = running.pop(future)
                    self._finish(index, outcome, unit, future.result)

    def _run_cluster(self, index, pending, outcome):
        """One-host cluster: coordinator + spawned fabric workers.

        The coordinator (and, for a self-served http store, the blob
        store) runs in *this* process over *this* ledger object, so
        completions land in ``index`` directly; the workers are real
        spawned processes driving the same HTTP protocol a
        multi-machine deployment would.
        """
        import multiprocessing
        from repro.fabric.coordinator import FabricCoordinator
        from repro.fabric.protocol import DEFAULT_LEASE_SECONDS
        from repro.fabric.server import make_fabric_server
        from repro.fabric.worker import worker_main
        from repro.store.artifact import ArtifactStore
        import threading

        spec = self.store_spec
        blob_store = None
        if spec and spec.get("backend") == "http" \
                and not spec.get("url"):
            blob_store = ArtifactStore(spec["dir"])
        coordinator = FabricCoordinator(
            index, store_spec=spec,
            lease_seconds=self.lease_seconds or DEFAULT_LEASE_SECONDS)
        server, _ = make_fabric_server(coordinator,
                                       blob_store=blob_store)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        if blob_store is not None:
            # Resolve the self-served spec now that the port is known.
            coordinator.store_spec = {"backend": "http", "url": url}
        serving = threading.Thread(target=server.serve_forever,
                                   daemon=True)
        serving.start()
        context = multiprocessing.get_context(self.mp_context)
        workers = min(self.workers, len(pending)) or 1
        processes = [
            context.Process(
                target=worker_main, args=(url,),
                kwargs={"worker_id": f"local-{rank}",
                        "jobs": self.worker_jobs},
                daemon=True)
            for rank in range(workers)]
        try:
            for process in processes:
                process.start()
            for process in processes:
                process.join()
        finally:
            server.shutdown()
            server.server_close()
        before_failed = dict(index.failed)
        for unit in pending:
            key = unit.key()
            if key in index.completed:
                obs.incr("sweep.completed")
                outcome.ran.append(unit.name)
            else:
                error = before_failed.get(
                    key, "unit did not complete on the cluster")
                obs.incr("sweep.failed")
                outcome.failed.append((unit.name, error))

    def run(self, resume=False):
        """Execute (or resume) the campaign; returns a :class:`CampaignResult`.

        The ledger is updated after every unit, so interrupting this
        call (Ctrl-C, SIGKILL, a crashed worker) never loses completed
        units — the next ``run``/``resume`` picks up from the ledger.
        """
        with obs.span("sweep.campaign") as span:
            index, units = self._open_index(resume)
            if self.backend == "local" and self.store_spec \
                    and self.store_spec.get("backend") == "http" \
                    and not self.store_spec.get("url"):
                raise ValueError(
                    "a self-served http store needs the cluster "
                    "backend (or an explicit store url)")
            outcome = CampaignResult(index=index)
            completed = index.completed
            pending = [unit for unit in units
                       if unit.key() not in completed]
            outcome.skipped = [unit.name for unit in units
                               if unit.key() in completed]
            if outcome.skipped:
                obs.incr("sweep.skipped", n=len(outcome.skipped))
            span.incr("units", len(units))
            span.incr("pending", len(pending))
            if pending:
                if self.backend == "cluster":
                    self._run_cluster(index, pending, outcome)
                elif self.workers == 1:
                    self._run_inline(index, pending, outcome)
                else:
                    self._run_pooled(index, pending, outcome)
        return outcome


def campaign_units(index):
    """The live :class:`SweepUnit`\\ s recorded in a campaign ledger."""
    return [SweepUnit.from_json(spec) for spec in index.units]


__all__ = ["BACKENDS", "CampaignResult", "SweepRunner",
           "campaign_id_for", "campaign_units"]
