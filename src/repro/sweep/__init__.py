"""``repro.sweep`` — the process-parallel multi-seed sweep engine.

The paper's headline numbers (2.55% fingerprint match rate, DoC
distributions, issuer shares) are point estimates from one crowdsourced
snapshot; the generative substitute lets the reproduction do what the
paper could not — re-run the *entire* study across many seeds, trust
stores, and fault rates, and report variance bands around every paper
anchor:

- :mod:`repro.sweep.grid` — :class:`~repro.sweep.grid.SweepUnit` (one
  config plus sweep-only knobs, content-addressed) and
  :func:`~repro.sweep.grid.expand_grid` (seed grids, trust-store
  ablations, fault-rate ablations);
- :mod:`repro.sweep.runner` — :class:`~repro.sweep.runner.SweepRunner`,
  a ``ProcessPoolExecutor`` campaign runner (one study per worker
  process — the GIL caps thread-based sweeps) that records every
  finished unit in the atomic
  :class:`~repro.store.campaign.CampaignIndex` ledger, so killed
  campaigns resume by re-running only incomplete configs; its
  ``backend="cluster"`` mode hands the same campaign to a
  :mod:`repro.fabric` coordinator + spawned fabric workers instead,
  with byte-identical per-config digests;
- :mod:`repro.sweep.worker` — the JSON-in/JSON-out per-unit entry point
  every pool worker executes (digests, scalars, invariant verdicts);
- :mod:`repro.sweep.aggregate` —
  :class:`~repro.sweep.aggregate.SweepAggregator` /
  :class:`~repro.sweep.aggregate.SweepReport`: per-scalar
  mean/stddev/min/max, invariant pass rates, and calibrated-band checks
  against :mod:`repro.verify.invariants`.

CLI: ``repro sweep run|resume|report`` with
``--seeds/--workers/--grid/--out`` plus
``--backend {local,cluster}`` / ``--store-backend {local,http}``.
"""

from repro.sweep.aggregate import (SCALAR_BANDS, ScalarStats,
                                   SweepAggregator, SweepReport)
from repro.sweep.grid import (FAULT_ABLATION, GRID_AXES, STAGES,
                              SweepUnit, expand_grid, parse_grid)
from repro.sweep.runner import (BACKENDS, CampaignResult, SweepRunner,
                                campaign_units)
from repro.sweep.worker import run_unit

__all__ = [
    "BACKENDS", "CampaignResult", "FAULT_ABLATION", "GRID_AXES",
    "SCALAR_BANDS", "STAGES", "ScalarStats", "SweepAggregator",
    "SweepReport", "SweepRunner", "SweepUnit", "campaign_units",
    "expand_grid", "parse_grid", "run_unit",
]
