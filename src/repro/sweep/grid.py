"""Sweep units and grid expansion.

A :class:`SweepUnit` is one independent campaign member: a full
:class:`~repro.config.StudyConfig` (seed, retry budget, trust-store
selection) plus the sweep-only knobs a config deliberately does not
carry — fault-injection rates, the probe latency time scale, and which
pipeline stage to run.  Units are plain JSON values on both sides of the
process boundary (the pool worker receives a spec dict, never a live
object graph), and each one is content-addressed by :meth:`SweepUnit.key`
so the campaign ledger can skip completed configs on resume.

:func:`expand_grid` turns a base config plus grid axes into the unit
list: a seed grid always, optionally per-store trust ablations
(``"stores"``), a fault-rate ablation (``"faults"``), and a
learned-attribution evaluation (``"ml"``, a ``stage="ml"`` unit) per
seed.
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.config import MAJOR_STORES, StudyConfig

#: grid axes ``expand_grid`` understands.
GRID_AXES = ("seeds", "stores", "faults", "ml")

#: pipeline stages a unit may run.
STAGES = ("full", "probe", "ml")

#: the fault-rate ablation applied by the ``"faults"`` axis — the same
#: rates the equivalence matrix's ``faults-retried`` mode proves
#: recoverable.
FAULT_ABLATION = (("transient_rate", 0.2), ("reset_rate", 0.1))


@dataclass(frozen=True)
class SweepUnit:
    """One campaign member: a config plus sweep-only execution knobs."""

    name: str
    seed: int
    retries: int = 3
    trust_stores: tuple = MAJOR_STORES
    #: ``((rate name, value), ...)`` handed to the FaultInjector; empty
    #: means clean probing.
    fault_rates: tuple = ()
    #: real seconds slept per simulated network second while probing
    #: (0.0 = no sleeping); output bytes never depend on it.
    time_scale: float = 0.0
    #: ``"full"`` runs every analysis; ``"probe"`` stops after the
    #: certificate dataset (the network-bound half of the study);
    #: ``"ml"`` trains and evaluates the learned-attribution stage
    #: only (``repro.ml``).
    stage: str = "full"

    def __post_init__(self):
        if self.stage not in STAGES:
            raise ValueError(f"unknown sweep stage {self.stage!r}; "
                             f"expected one of {STAGES}")
        if self.retries < 1:
            raise ValueError("retries must be >= 1")
        if self.fault_rates and self.retries < 2:
            raise ValueError("fault-injected units need retries >= 2 "
                             "so every fault is recovered")
        object.__setattr__(self, "trust_stores",
                           tuple(self.trust_stores))
        object.__setattr__(self, "fault_rates",
                           tuple((str(k), float(v))
                                 for k, v in self.fault_rates))

    def study_config(self):
        """The frozen :class:`StudyConfig` this unit executes."""
        from repro.probing.engine import RetryPolicy
        return StudyConfig(seed=self.seed,
                           retry=RetryPolicy(max_attempts=self.retries),
                           trust_stores=self.trust_stores)

    def to_json(self):
        """The spec dict crossing the process boundary (plus the key)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "retries": self.retries,
            "trust_stores": list(self.trust_stores),
            "fault_rates": [list(pair) for pair in self.fault_rates],
            "time_scale": self.time_scale,
            "stage": self.stage,
            "key": self.key(),
        }

    @classmethod
    def from_json(cls, payload):
        return cls(
            name=payload["name"],
            seed=int(payload["seed"]),
            retries=int(payload.get("retries", 3)),
            trust_stores=tuple(payload.get("trust_stores",
                                           MAJOR_STORES)),
            fault_rates=tuple(tuple(pair) for pair
                              in payload.get("fault_rates", ())),
            time_scale=float(payload.get("time_scale", 0.0)),
            stage=payload.get("stage", "full"))

    def key(self):
        """Content digest of everything that selects this unit's work.

        Built on the config's :meth:`StudyConfig.artifact_digest` (the
        result-determining fields) plus the sweep-only knobs, so two
        units doing identical work collide and the campaign ledger
        dedupes them.
        """
        payload = {
            "artifact": self.study_config().artifact_digest(),
            "fault_rates": [list(pair) for pair in self.fault_rates],
            "time_scale": self.time_scale,
            "stage": self.stage,
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parse_grid(spec):
    """``"seeds,stores"`` → validated axis tuple (``seeds`` implied)."""
    axes = tuple(name.strip() for name in str(spec).split(",")
                 if name.strip())
    unknown = set(axes) - set(GRID_AXES)
    if unknown:
        raise ValueError(f"unknown grid axes {sorted(unknown)}; "
                         f"expected a subset of {list(GRID_AXES)}")
    return axes if "seeds" in axes else ("seeds",) + axes


def expand_grid(base_config, seeds, grid=("seeds",), time_scale=0.0,
                stage="full"):
    """The campaign's unit list for a base config and grid axes.

    ``seeds`` consecutive seeds starting at ``base_config.seed``; per
    seed, the ``"stores"`` axis adds one single-trust-store ablation per
    major store and the ``"faults"`` axis adds one fault-injected run
    (retry budget raised so every fault is recovered and the outputs
    stay byte-identical to the clean unit).
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    axes = parse_grid(",".join(grid)) if not isinstance(grid, str) \
        else parse_grid(grid)
    base_retries = base_config.retry.max_attempts
    units = []
    for offset in range(int(seeds)):
        seed = base_config.seed + offset
        units.append(SweepUnit(
            name=f"seed{seed}", seed=seed, retries=base_retries,
            trust_stores=base_config.trust_stores,
            time_scale=time_scale, stage=stage))
        if "stores" in axes:
            for store in MAJOR_STORES:
                units.append(SweepUnit(
                    name=f"seed{seed}-store-{store}", seed=seed,
                    retries=base_retries, trust_stores=(store,),
                    time_scale=time_scale, stage=stage))
        if "faults" in axes:
            units.append(SweepUnit(
                name=f"seed{seed}-faults", seed=seed,
                retries=max(4, base_retries),
                trust_stores=base_config.trust_stores,
                fault_rates=FAULT_ABLATION,
                time_scale=time_scale, stage=stage))
        if "ml" in axes:
            units.append(SweepUnit(
                name=f"seed{seed}-ml", seed=seed,
                retries=base_retries,
                trust_stores=base_config.trust_stores,
                time_scale=time_scale, stage="ml"))
    return tuple(units)
