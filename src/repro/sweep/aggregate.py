"""Aggregating a campaign: variance bands around every paper anchor.

The paper's headline numbers are point estimates from one crowdsourced
snapshot; a sweep re-runs the entire study across many seeds, and this
module turns the per-unit results into a :class:`SweepReport`:

- **scalar statistics** — mean/stddev/min/max/n for every key analysis
  scalar (match rate, DoC means, validity extremes, per-org issuer
  shares), the variance band the single-run invariants cannot provide;
- **invariant pass rates** — how many units each of the nine paper
  invariants held for (a single failing seed flags a fragile anchor
  even when the default seed passes);
- **calibrated band checks** — the aggregate mean *and* every per-unit
  value must stay inside the bands :mod:`repro.verify.invariants` pins
  to the paper (match-rate band, unit interval, the 100-year validity
  extreme), so the sweep strengthens the per-seed checks instead of
  merely averaging over them.
"""

import math
from dataclasses import dataclass, field

from repro.schema import versioned
from repro.verify.invariants import (MATCH_RATE_BAND, UNIT_INTERVAL,
                                     VALIDITY_MAX_DAYS)

#: the learned-attribution acceptance floor: held-out macro-F1 must
#: beat the ~2.55% exact-match coverage by >= 10x on every seed
#: (observed range across seeds 2023-2026: 0.75-0.95).
ML_MACRO_F1_BAND = (0.255, 1.0)

#: calibrated bands per aggregated scalar — each ties back to a paper
#: anchor enforced by :data:`repro.verify.invariants.PAPER_INVARIANTS`
#: (or, for the ``ml_*`` scalars, to the learned-attribution gate).
SCALAR_BANDS = {
    "match_rate": MATCH_RATE_BAND,
    "doc_vendor_mean": UNIT_INTERVAL,
    "doc_device_mean": UNIT_INTERVAL,
    "validity_min_days": (1e-9, VALIDITY_MAX_DAYS),
    "validity_max_days": (1e-9, VALIDITY_MAX_DAYS),
    "ml_macro_f1": ML_MACRO_F1_BAND,
    "ml_heldout_accuracy": (0.9, 1.0),
    "ml_attribution_coverage": (0.8, 1.0),
}


@dataclass(frozen=True)
class ScalarStats:
    """Summary statistics of one scalar across campaign units."""

    n: int
    mean: float
    stddev: float
    min: float
    max: float

    @classmethod
    def of(cls, values):
        values = [float(value) for value in values]
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((value - mean) ** 2
                           for value in values) / (n - 1)
        else:
            variance = 0.0
        return cls(n=n, mean=round(mean, 9),
                   stddev=round(math.sqrt(variance), 9),
                   min=round(min(values), 9),
                   max=round(max(values), 9))

    def to_json(self):
        return {"n": self.n, "mean": self.mean, "stddev": self.stddev,
                "min": self.min, "max": self.max}


@dataclass
class SweepReport:
    """The campaign's aggregate verdict (JSON round-trippable)."""

    campaign_id: str
    stage: str
    units_total: int
    units_completed: int
    #: ``(unit name, error string)`` for units recorded as failed.
    failures: list = field(default_factory=list)
    #: scalar name → :class:`ScalarStats`.
    scalars: dict = field(default_factory=dict)
    #: issuer org → :class:`ScalarStats` of its leaf share.
    issuer_shares: dict = field(default_factory=dict)
    #: invariant name → ``{"passed": int, "n": int, "ok": bool}``.
    invariants: dict = field(default_factory=dict)
    #: calibrated band verdicts, one per entry of :data:`SCALAR_BANDS`.
    bands: list = field(default_factory=list)
    #: per-unit summary rows (name, seed, digests, wall seconds).
    units: list = field(default_factory=list)

    @property
    def ok(self):
        """No failures, every invariant held everywhere, bands respected."""
        return (not self.failures
                and self.units_completed == self.units_total
                and all(entry["ok"] for entry in self.invariants.values())
                and all(entry["ok"] for entry in self.bands))

    def to_json(self):
        return versioned({
            "ok": self.ok,
            "campaign_id": self.campaign_id,
            "stage": self.stage,
            "units_total": self.units_total,
            "units_completed": self.units_completed,
            "failures": [list(pair) for pair in self.failures],
            "scalars": {name: stats.to_json()
                        for name, stats in self.scalars.items()},
            "issuer_shares": {org: stats.to_json()
                              for org, stats in
                              self.issuer_shares.items()},
            "invariants": dict(self.invariants),
            "bands": list(self.bands),
            "units": list(self.units),
        })

    def render(self):
        """Human-readable campaign summary."""
        lines = [f"sweep campaign {self.campaign_id[:12]} "
                 f"({self.stage} stage): "
                 f"{self.units_completed}/{self.units_total} units "
                 f"completed"]
        for name, error in self.failures:
            lines.append(f"  FAILED {name}: {error}")
        if self.scalars:
            lines.append("scalar bands across units "
                         "(mean +/- stddev [min, max], n):")
            for name, stats in self.scalars.items():
                lines.append(
                    f"  {name:20s} {stats.mean:.6f} +/- "
                    f"{stats.stddev:.6f} [{stats.min:.6f}, "
                    f"{stats.max:.6f}] n={stats.n}")
        if self.invariants:
            lines.append("paper invariants across units:")
            for name, entry in sorted(self.invariants.items()):
                mark = "ok  " if entry["ok"] else "FAIL"
                lines.append(f"  {mark} {name:22s} "
                             f"{entry['passed']}/{entry['n']} units")
        if self.bands:
            lines.append("calibrated bands (repro.verify.invariants):")
            for entry in self.bands:
                mark = "ok  " if entry["ok"] else "FAIL"
                low, high = entry["band"]
                lines.append(f"  {mark} {entry['scalar']:20s} within "
                             f"[{low}, {high}] (mean and every unit)")
        lines.append("sweep OK" if self.ok else "SWEEP CHECK FAILED")
        return "\n".join(lines)


class SweepAggregator:
    """Builds a :class:`SweepReport` from campaign results."""

    def __init__(self, results, campaign_id="", stage=None,
                 units_total=None, failures=()):
        self.results = [result for result in results if result]
        self.campaign_id = campaign_id
        self.stage = stage if stage is not None else (
            self.results[0].get("stage", "full") if self.results
            else "full")
        self.units_total = units_total if units_total is not None \
            else len(self.results)
        self.failures = [tuple(pair) for pair in failures]

    @classmethod
    def from_index(cls, index):
        """Aggregate a campaign ledger (completed + failed units)."""
        by_key = {unit["key"]: unit for unit in index.units}
        failures = [(by_key.get(key, {}).get("name", key[:12]), error)
                    for key, error in sorted(index.failed.items())]
        return cls(index.results(), campaign_id=index.campaign_id,
                   stage=index.stage, units_total=len(index.units),
                   failures=failures)

    # -- the aggregation ------------------------------------------------------

    def _scalar_values(self):
        values = {}
        for result in self.results:
            for name, value in (result.get("scalars") or {}).items():
                if value is not None:
                    values.setdefault(name, []).append(value)
        return values

    def _issuer_values(self):
        values = {}
        for result in self.results:
            for org, share in (result.get("issuer_shares")
                               or {}).items():
                values.setdefault(org, []).append(share)
        return values

    def _invariant_tallies(self):
        tallies = {}
        for result in self.results:
            checks = (result.get("invariants") or {}).get("checks", ())
            for check in checks:
                entry = tallies.setdefault(
                    check["name"], {"passed": 0, "n": 0, "ok": True})
                entry["n"] += 1
                if check["ok"]:
                    entry["passed"] += 1
                else:
                    entry["ok"] = False
        return tallies

    def _band_checks(self, scalar_values, scalar_stats):
        checks = []
        for name, band in SCALAR_BANDS.items():
            if name not in scalar_stats:
                continue
            low, high = band
            stats = scalar_stats[name]
            mean_ok = low <= stats.mean <= high
            units_ok = all(low <= value <= high
                           for value in scalar_values[name])
            checks.append({"scalar": name, "band": [low, high],
                           "mean_ok": mean_ok, "units_ok": units_ok,
                           "ok": mean_ok and units_ok})
        return checks

    def _unit_rows(self):
        return [{
            "name": result.get("name"),
            "seed": result.get("seed"),
            "config_digest": result.get("config_digest"),
            "artifact_digest": result.get("artifact_digest"),
            "wall_seconds": result.get("wall_seconds"),
            "invariants_ok": (result.get("invariants") or {}).get("ok"),
        } for result in self.results]

    def report(self):
        """The aggregate :class:`SweepReport`."""
        scalar_values = self._scalar_values()
        scalar_stats = {name: ScalarStats.of(values)
                        for name, values in scalar_values.items()}
        issuer_stats = {org: ScalarStats.of(values)
                        for org, values in
                        sorted(self._issuer_values().items())}
        return SweepReport(
            campaign_id=self.campaign_id,
            stage=self.stage,
            units_total=self.units_total,
            units_completed=len(self.results),
            failures=list(self.failures),
            scalars=scalar_stats,
            issuer_shares=issuer_stats,
            invariants=self._invariant_tallies(),
            bands=self._band_checks(scalar_values, scalar_stats),
            units=self._unit_rows(),
        )
