"""The sweep worker: one process, one unit, one JSON result.

``run_unit`` is the function a campaign's ``ProcessPoolExecutor`` maps
over unit specs.  It is deliberately top-level and JSON-in/JSON-out:

- the *input* is a spec dict (:meth:`repro.sweep.grid.SweepUnit.to_json`
  plus the shared cache directory), so the process boundary never
  pickles live object graphs in;
- the *output* is a plain dict of digests, scalars, invariant verdicts,
  per-stage timings, and cache provenance, so the boundary never pickles
  analysis objects out.

Each worker builds its own :class:`~repro.study.Study` (never the
memoized ``get_study`` — fault-injected units must not pollute a shared
memo), attaches the campaign's shared artifact store when one is
configured — local directory or remote HTTP backend, resolved from the
payload's store-backend spec by
:func:`repro.store.backend.store_from_spec`
(warming it for every later unit and re-run), and runs under its own
:class:`repro.obs.Observability` context so per-config stage timings
travel back in the result payload instead of vanishing inside the
subprocess.

Determinism contract: a unit's ``config_digest`` (the combined digest
over its non-volatile analysis nodes) is byte-identical whether the unit
runs in a pool worker, inline in the campaign process, or via a plain
``repro report`` — the same guarantee the equivalence matrix enforces,
extended across the process boundary.
"""

import hashlib
import json
import time

from repro import obs
from repro.store.backend import store_from_spec
from repro.study import Study
from repro.sweep.grid import SweepUnit
from repro.verify.baseline import VOLATILE_NODES
from repro.verify.canonical import digest


def _probe_via_engine(study, unit):
    """Probe through a fault injector / latency model, then adopt.

    Mirrors the equivalence matrix's fault mode: the injector's
    ``max_faulty_attempts`` stays strictly below the retry budget, so
    the adopted dataset is byte-identical to clean probing.
    """
    from repro.probing.engine import (FaultInjector, LatencyModel,
                                      ProbeEngine)
    config = study.config
    network = study.network
    target = network
    if unit.fault_rates:
        budget = config.retry.max_attempts
        target = FaultInjector(network,
                               max_faulty_attempts=min(2, budget - 1),
                               **dict(unit.fault_rates))
    latency = LatencyModel(seed=config.seed) if unit.time_scale > 0.0 \
        else None
    engine = ProbeEngine(target, vantages=config.vantages,
                         jobs=config.probe_jobs, retry=config.retry,
                         latency=latency, time_scale=unit.time_scale,
                         seed=network.seed)
    snis = [spec.fqdn for spec in study.world.servers]
    return study.adopt_certificates(engine.probe_all(snis))


def _combined_digest(node_digests):
    """One digest over every non-volatile node digest (sorted)."""
    payload = {name: value for name, value in node_digests.items()
               if name not in VOLATILE_NODES}
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _scalars(results):
    """The key analysis scalars the aggregator collects per seed."""
    client = results["client"]
    server = results["server"]
    doc_vendor = list(client["doc_vendor"].values())
    doc_device = list(client["doc_device"].values())
    days = [point.validity_days for point in server["ct"].points]

    def mean(values):
        return round(sum(values) / len(values), 9) if values else None

    return {
        "match_rate": round(client["matching"].matched_fraction, 9),
        "doc_vendor_mean": mean(doc_vendor),
        "doc_device_mean": mean(doc_device),
        "validity_min_days": round(min(days), 6),
        "validity_max_days": round(max(days), 6),
    }


def _issuer_shares(results):
    issuers = results["server"]["issuers"]
    return {org: round(issuers.issuer_share(org), 9)
            for org in issuers.issuer_orgs}


def run_unit(payload):
    """Execute one sweep unit; returns its JSON result payload."""
    from repro.core.pipeline import run_full_study
    from repro.verify.invariants import invariant_summary
    unit = SweepUnit.from_json(payload["unit"])
    store_spec = payload.get("store")
    if store_spec is None and payload.get("cache_dir"):
        # Legacy payload shape: a bare cache directory is a local store.
        store_spec = {"backend": "local", "dir": payload["cache_dir"]}
    config = unit.study_config()
    started = time.perf_counter()
    ctx = obs.Observability()
    previous = obs.activate(ctx)
    try:
        study = Study(config)
        store = store_from_spec(store_spec)
        if store is not None:
            study.attach_store(store)
        if unit.fault_rates or unit.time_scale > 0.0:
            _probe_via_engine(study, unit)
        with ctx.span(f"sweep.unit.{unit.name}"):
            if unit.stage == "probe":
                certificates = study.certificates
                node_digests = {
                    "probe.certificates": certificates.fingerprint()}
                scalars = {
                    "probed_snis": float(len(certificates)),
                    "reachable_snis": float(
                        len(certificates.reachable_fqdns())),
                }
                issuer_shares = {}
                invariants = {}
            elif unit.stage == "ml":
                from repro.ml import evaluate_study
                eval_payload = evaluate_study(study)
                node_digests = {
                    "ml.eval_report": digest(eval_payload)}
                scalars = {
                    "ml_macro_f1": eval_payload["macro"]["f1"],
                    "ml_heldout_accuracy": eval_payload["accuracy"],
                    "ml_attribution_coverage":
                        eval_payload["coverage"]
                        ["attribution_coverage"],
                }
                issuer_shares = {}
                invariants = {}
            else:
                node_digests = {}
                results = run_full_study(
                    study, jobs=1,
                    node_observer=lambda stage, packed:
                        node_digests.__setitem__(stage, digest(packed)))
                scalars = _scalars(results)
                issuer_shares = _issuer_shares(results)
                invariants = invariant_summary(study, results)
        timings = ctx.tracer.stage_timings()
    finally:
        obs.deactivate(previous)
    return {
        "name": unit.name,
        "key": unit.key(),
        "seed": unit.seed,
        "stage": unit.stage,
        "unit": unit.to_json(),
        "ok": True,
        "artifact_digest": config.artifact_digest(),
        "config_digest": _combined_digest(node_digests),
        "node_digests": node_digests,
        "scalars": scalars,
        "issuer_shares": issuer_shares,
        "invariants": invariants,
        "wall_seconds": round(time.perf_counter() - started, 6),
        "stage_timings": timings,
        "cache": store.provenance() if store is not None else {},
    }
