"""Derivation of device TLS stacks from known libraries.

The paper's central client-side observation is that ~98% of device
fingerprints match no known library exactly, yet most are recognizably
*derived* from one (Appendix B.2 categorizes the deviations).  The
:class:`StackFactory` encodes that generative process: a stack starts from
a known library's default ClientHello and a seeded mutation is applied —

- ``exact``: the library default, verbatim (the ~2.5% that match);
- ``extensions``: same ciphersuite list, perturbed extensions/version
  (Appendix B.2 "exact match" on suites without a 3-tuple match);
- ``reorder``: same suites, different preference order;
- ``component``: recombined suites from the same algorithm components;
- ``similar``: key-length/ hash-length substitutions (AES-128→256,
  SHA256→SHA384);
- ``custom``: heavy vendor customization.

A ``hygiene`` knob governs whether vulnerable suites are stripped (good
vendors) or retained and even promoted to the front of the list (the
paper's Figure 11 vendors), and propensity knobs drive FALLBACK_SCSV,
OCSP ``status_request``, and GREASE adoption (Appendix B.3/B.9/B.10).
"""

import hashlib
import random

from repro.libraries.base import LibraryFingerprint
from repro.inspector.model import TLSStack
from repro.tlslib.ciphersuites import (
    FALLBACK_SCSV,
    REGISTRY,
    suite_by_code,
)
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.grease import GREASE_VALUES
from repro.tlslib.versions import TLSVersion

#: Extensions a vendor build may toggle without touching the suite list.
_TWEAKABLE_EXTENSIONS = (
    int(Ext.SESSION_TICKET),
    int(Ext.RENEGOTIATION_INFO),
    int(Ext.PADDING),
    int(Ext.APPLICATION_LAYER_PROTOCOL_NEGOTIATION),
    int(Ext.NEXT_PROTOCOL_NEGOTIATION),
    int(Ext.EXTENDED_MASTER_SECRET),
    int(Ext.SIGNED_CERTIFICATE_TIMESTAMP),
)

#: Real, algorithm-bearing suites available for additions.  Severe
#: (anonymous/export/NULL/RC2) suites are excluded from random draws —
#: they enter only through the explicit low-hygiene path, keeping the
#: paper's count of 27 affected devices.
_ADDABLE_SUITES = tuple(
    suite.code for suite in REGISTRY.values()
    if not suite.is_signaling and suite.kx != "TLS13"
    and not suite.is_anon and not suite.is_export
    and not suite.is_null_cipher
    and not (suite.cipher or "").startswith("RC2")
)

#: Highly vulnerable suites low-hygiene vendors retain (Section 4.2's
#: anonymous/export/NULL set, proposed by 27 devices of 14 vendors).
SEVERE_SUITES = tuple(
    suite.code for suite in REGISTRY.values()
    if not suite.is_signaling and (
        suite.is_anon or suite.is_export or suite.is_null_cipher
        or (suite.cipher or "").startswith("RC2"))
)

#: Substitution pairs for the ``similar`` mutation (same algorithm, longer
#: key/digest), applied on IANA names.
_SIMILAR_SWAPS = (
    ("AES_128_CBC_SHA256", "AES_256_CBC_SHA384"),
    ("AES_128_GCM_SHA256", "AES_256_GCM_SHA384"),
    ("AES_128_CBC_SHA", "AES_256_CBC_SHA"),
    ("CAMELLIA_128_CBC_SHA", "CAMELLIA_256_CBC_SHA"),
)


def stable_rng(*scope):
    """A ``random.Random`` seeded from a hash-randomization-proof digest.

    Python's built-in ``hash`` is salted per process, so seeding with
    tuples or strings directly would break cross-run reproducibility.
    """
    material = "\x1f".join(repr(part) for part in scope).encode("utf-8")
    seed = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
    return random.Random(seed)


def _swap_similar(code, rng):
    """Replace a suite with its longer-key sibling when one exists."""
    name = suite_by_code(code).name
    for shorter, longer in _SIMILAR_SWAPS:
        if name.endswith(shorter):
            sibling = name[: -len(shorter)] + longer
            try:
                from repro.tlslib.ciphersuites import suite_by_name
                return suite_by_name(sibling).code
            except KeyError:
                return code
    return code


def _dedupe(codes):
    seen, out = set(), []
    for code in codes:
        if code not in seen:
            seen.add(code)
            out.append(code)
    return out


class StackFactory:
    """Derives :class:`TLSStack` instances from library fingerprints."""

    def __init__(self, seed=0):
        self._seed = seed

    def _rng(self, *scope):
        return stable_rng(self._seed, *scope)

    def derive(self, base, name, *, mutation, hygiene=0.5, scope=(),
               grease=False, fallback_scsv=False, ocsp=False,
               version_override=None, allow_severe=False):
        """Derive one stack from ``base``.

        Args:
            base: a :class:`~repro.libraries.base.LibraryFingerprint`.
            name: stack identifier (provenance only).
            mutation: one of ``exact``, ``extensions``, ``reorder``,
                ``component``, ``similar``, ``custom``.
            hygiene: 0..1; low values keep (and sometimes promote)
                vulnerable suites, high values strip them.
            scope: extra seeding material so the same vendor derives
                distinct stacks deterministically.
            grease: add GREASE values to suites and extensions.
            fallback_scsv: append TLS_FALLBACK_SCSV.
            ocsp: include the ``status_request`` extension.
            version_override: pin the proposed TLS version (legacy devices).
        """
        rng = self._rng(name, mutation, *scope)
        suites = list(base.ciphersuites)
        extensions = list(base.extensions)
        version = base.tls_version

        # The capture window predates IoT TLS 1.3 adoption (Table 12 shows
        # none); devices built on 1.3-capable libraries pin max 1.2.
        if version == TLSVersion.TLS_1_3:
            version = TLSVersion.TLS_1_2
            suites = [c for c in suites if suite_by_code(c).kx != "TLS13"]
            extensions = [e for e in extensions
                          if e not in (int(Ext.SUPPORTED_VERSIONS),
                                       int(Ext.KEY_SHARE),
                                       int(Ext.PSK_KEY_EXCHANGE_MODES))]

        if mutation == "exact":
            return TLSStack(name=name, tls_version=base.tls_version,
                            ciphersuites=tuple(base.ciphersuites),
                            extensions=tuple(base.extensions),
                            origin_library=base.full_name, mutation="exact")

        if mutation == "extensions":
            extensions = self._tweak_extensions(extensions, rng)
        elif mutation == "reorder":
            suites = self._reorder(suites, rng)
        elif mutation == "component":
            suites = self._recombine_components(suites, rng)
        elif mutation == "similar":
            suites = self._similarize(suites, rng)
        elif mutation == "custom":
            suites = self._customize(suites, rng)
            extensions = self._tweak_extensions(extensions, rng)
        else:
            raise ValueError(f"unknown mutation: {mutation!r}")

        # Hygiene rewrites the suite list, so it only applies to mutations
        # that already touch it — "extensions" and "reorder" preserve the
        # base library's suite set by definition.
        if mutation not in ("extensions", "reorder"):
            suites = self._apply_hygiene(suites, hygiene, rng,
                                         allow_severe=allow_severe)
        if fallback_scsv and FALLBACK_SCSV not in suites:
            suites.append(FALLBACK_SCSV)
        if ocsp and int(Ext.STATUS_REQUEST) not in extensions:
            extensions.append(int(Ext.STATUS_REQUEST))
        if grease:
            value = rng.choice(sorted(GREASE_VALUES))
            extensions = [value] + extensions
            # A rare build GREASEs only its extensions (Appendix B.10
            # observes 2 such devices).
            if rng.random() > 0.01:
                suites = [value] + suites
        if version_override is not None:
            version = version_override

        return TLSStack(name=name, tls_version=version,
                        ciphersuites=tuple(suites),
                        extensions=tuple(extensions),
                        origin_library=base.full_name, mutation=mutation)

    # --- mutation operators ---------------------------------------------------

    @staticmethod
    def _tweak_extensions(extensions, rng):
        out = list(extensions)
        for candidate in _TWEAKABLE_EXTENSIONS:
            roll = rng.random()
            if candidate in out and roll < 0.15:
                out.remove(candidate)
            elif candidate not in out and roll > 0.75:
                out.append(candidate)
        if not out:
            out = [int(Ext.RENEGOTIATION_INFO)]
        return out

    @staticmethod
    def _similarize(suites, rng):
        """Collapse one key/digest length per cipher family.

        A vendor build that keeps only the AES-128 (or only the AES-256)
        variants has *similar* — not identical — component sets relative
        to the base library (Appendix B.2's ``similar component``).
        """
        shorter_first = rng.random() < 0.5
        out = []
        for code in suites:
            if rng.random() < 0.08 and len(suites) > 6:
                continue  # vendors also trim a few suites while rebuilding
            name = suite_by_code(code).name
            replaced = None
            for short, long in _SIMILAR_SWAPS:
                if shorter_first and name.endswith(long):
                    replaced = name[: -len(long)] + short
                elif not shorter_first and name.endswith(short):
                    replaced = name[: -len(short)] + long
                if replaced is not None:
                    break
            if replaced is None:
                out.append(code)
            else:
                try:
                    from repro.tlslib.ciphersuites import suite_by_name
                    out.append(suite_by_name(replaced).code)
                except KeyError:
                    out.append(code)
        return _dedupe(out)

    @staticmethod
    def _reorder(suites, rng):
        out = list(suites)
        # Swap a handful of adjacent blocks — vendors reorder preferences,
        # they rarely shuffle uniformly.
        for _ in range(rng.randint(1, 4)):
            if len(out) < 4:
                break
            i = rng.randrange(0, len(out) - 2)
            width = rng.randint(1, min(3, len(out) - i - 1))
            out[i:i + width], out[i + width:i + 2 * width] = \
                out[i + width:i + 2 * width], out[i:i + width]
        return _dedupe(out)

    @staticmethod
    def _recombine_components(suites, rng):
        """Build different suites out of the same algorithm components."""
        kept = [c for c in suites if rng.random() < 0.8]
        components = {suite_by_code(c).components() for c in suites}
        kx_set = {kx for kx, _c, _m in components if kx}
        cipher_set = {cipher for _k, cipher, _m in components if cipher}
        additions = []
        for code in _ADDABLE_SUITES:
            suite = suite_by_code(code)
            if (suite.kx in kx_set and suite.cipher in cipher_set
                    and code not in kept and rng.random() < 0.25):
                additions.append(code)
        return _dedupe(kept + additions)

    @staticmethod
    def _customize(suites, rng):
        kept = [c for c in suites if rng.random() < 0.7]
        extras = rng.sample(_ADDABLE_SUITES, k=rng.randint(1, 6))
        insert_at = rng.randrange(0, len(kept) + 1) if kept else 0
        return _dedupe(kept[:insert_at] + extras + kept[insert_at:])

    @staticmethod
    def _apply_hygiene(suites, hygiene, rng, allow_severe=False):
        """Hygiene-dependent handling of vulnerable suites.

        A stack is scrubbed of vulnerable suites with probability equal to
        its hygiene (vendors with good practices clean most builds; the
        paper still finds ~45% of fingerprints with a vulnerable
        component).  Low hygiene (< 0.2) additionally promotes a
        vulnerable suite to the front of the list and sometimes retains a
        severe (export/NULL/anon) suite — Figure 11's vendors.
        """
        out = list(suites)
        # Even sloppy vendors ship *some* clean builds (newer firmware);
        # the affine floor keeps the study-wide vulnerable share near the
        # paper's 44.6% given the era mix of base libraries.
        strip_probability = 1.0 if hygiene > 0.75 else 0.38 + 0.45 * hygiene
        if rng.random() < strip_probability:
            out = [c for c in out if not suite_by_code(c).vulnerable_components()]
        elif hygiene < 0.2:
            vulnerable = [c for c in out
                          if suite_by_code(c).vulnerable_components()]
            if vulnerable and rng.random() < 0.5:
                promoted = rng.choice(vulnerable)
                out.remove(promoted)
                out.insert(0, promoted)
            # Severe (anon/export/NULL/RC2) additions are rare and
            # device-specific: the paper finds 31 such fingerprints on 27
            # devices of 14 vendors.  Only per-device builds may add them.
            severe_probability = 0.25 if hygiene < 0.1 else 0.08
            if allow_severe and rng.random() < severe_probability:
                severe = rng.choice(SEVERE_SUITES)
                if severe not in out:
                    out.append(severe)
        if not out:
            out = list(suites)
        return _dedupe(out)
