"""Core entities of the crowdsourced dataset."""

from dataclasses import dataclass, field

from repro.libraries.base import fingerprint_key
from repro.schema import versioned
from repro.tlslib.versions import TLSVersion


@dataclass(frozen=True)
class Vendor:
    """A device vendor (manufacturer brand).

    Attributes:
        name: brand name as it appears in the study (Table 13).
        index: the paper's vendor index in Figure 1.
    """

    name: str
    index: int

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class DeviceType:
    """A product line of one vendor (e.g. Amazon "Echo")."""

    vendor: str
    name: str
    category: str = "other"

    @property
    def full_name(self):
        return f"{self.vendor} {self.name}"


@dataclass(frozen=True)
class TLSStack:
    """One TLS client configuration installed on a device.

    A device carries several stacks: the vendor's base stack, possibly a
    device-type or firmware-specific stack, and one stack per installed
    application/SDK.  Which stack speaks depends on the destination.

    Attributes:
        name: human-readable identifier (for debugging/provenance).
        tls_version: proposed protocol version.
        ciphersuites / extensions: ordered wire codes.
        origin_library: full name of the known library this stack was
            derived from (provenance; the analysis never sees this —
            recovering it is exactly the fingerprint-matching problem).
        mutation: short description of how it deviates from the origin
            (``"exact"``, ``"extensions"``, ``"reorder"``, ``"component"``,
            ``"custom"``), aligned with the semantics-aware categories of
            Appendix B.2.
    """

    name: str
    tls_version: TLSVersion
    ciphersuites: tuple
    extensions: tuple
    origin_library: str = None
    mutation: str = "custom"

    def fingerprint(self):
        """The study's 3-tuple fingerprint key."""
        return fingerprint_key(self.tls_version, self.ciphersuites,
                               self.extensions)


@dataclass
class Device:
    """A single physical device instance in some user's home."""

    device_id: str
    vendor: str
    device_type: str
    user_id: str
    label: str = ""
    stacks: dict = field(default_factory=dict)
    #: destination SLD → stack key in ``stacks`` (application routing).
    routing: dict = field(default_factory=dict)
    #: stack key used when no route matches.
    default_stack: str = "base"

    def stack_for(self, sld):
        """The stack this device uses when talking to servers under ``sld``."""
        key = self.routing.get(sld, self.default_stack)
        return self.stacks[key]


@dataclass(frozen=True)
class User:
    """A crowdsourcing participant (one home network)."""

    user_id: str
    region: str = "us"


@dataclass(frozen=True)
class ClientHelloRecord:
    """One observed ClientHello, in IoT Inspector's schema.

    IoT Inspector deliberately does not keep the full payload; it records
    the TLS version, ciphersuites, extension *types*, and SNI, plus the
    device/user attribution added by the labeling pipeline.
    """

    device_id: str
    vendor: str
    device_type: str
    user_id: str
    timestamp: int
    tls_version: TLSVersion
    ciphersuites: tuple
    extensions: tuple
    sni: str = None

    def fingerprint(self):
        """The study's 3-tuple fingerprint key."""
        return fingerprint_key(self.tls_version, self.ciphersuites,
                               self.extensions)

    def to_json(self):
        """The anonymized-capture JSONL row (IoT Inspector's schema)."""
        return versioned({
            "device_id": self.device_id,
            "vendor": self.vendor,
            "device_type": self.device_type,
            "user_id": self.user_id,
            "timestamp": self.timestamp,
            "tls_version": int(self.tls_version),
            "ciphersuites": list(self.ciphersuites),
            "extensions": list(self.extensions),
            "sni": self.sni,
        })

    @classmethod
    def from_json(cls, data):
        """Rebuild a record from its :meth:`to_json` row."""
        return cls(
            device_id=data["device_id"],
            vendor=data["vendor"],
            device_type=data["device_type"],
            user_id=data["user_id"],
            timestamp=data["timestamp"],
            tls_version=TLSVersion(data["tls_version"]),
            ciphersuites=tuple(data["ciphersuites"]),
            extensions=tuple(data["extensions"]),
            sni=data.get("sni"),
        )
