"""Seeded synthesis of the full IoT ecosystem (the "world").

The :class:`WorldGenerator` builds, from a single integer seed:

1. the server catalog — explicit domains (:mod:`repro.inspector.catalog`)
   plus auto-generated vendor domains and filler third-party domains,
   flattened into :class:`ServerSpec` records totalling the paper's 1,194
   SNIs (1,151 reachable at probe time, 43 dead by 2022);
2. the TLS stack population — supply-chain pool stacks, SDK stacks, a
   commodity-build pool (identical builds that independently land on
   multiple vendors' devices — the source of coincidentally shared
   fingerprints), vendor base stacks, device-type stacks, per-device
   stacks, and the small set of *exact* library stacks that produce the
   paper's ~2.5% known-library matches;
3. 2,014 devices across 721 users, with user labels that survive the
   identification pipeline (plus funnel extras that do not);
4. the ClientHello capture: every record is emitted as real wire bytes
   and parsed back, exactly as a capture tool would observe it.
"""

from dataclasses import dataclass, field

from repro.inspector import catalog, labels, sdks, timeline
from repro.inspector.model import ClientHelloRecord, Device, TLSStack, User
from repro.inspector.stacks import StackFactory, stable_rng
from repro.inspector.vendors import SHARED_POOLS, VENDOR_PROFILES
from repro.libraries import curl as curl_lib
from repro.libraries import mbedtls as mbedtls_lib
from repro.libraries import openssl as openssl_lib
from repro.libraries import wolfssl as wolfssl_lib
from repro.tlslib.clienthello import ClientHello
from repro.tlslib.extensions import ExtensionType as Ext
from repro.tlslib.versions import TLSVersion

#: Study-level targets (paper Sections 3 and 5.1).
TARGET_SNI_COUNT = 1194
TARGET_SLD_COUNT = 357
TARGET_UNREACHABLE = 43
TARGET_USERS = 721

#: Size of the commodity-build pool (identical third-party builds found
#: across unrelated vendors — busybox/libcurl images, Android components).
COMMODITY_POOL_SIZE = 210

#: Library era → candidate base versions (variation across vendor builds).
LIBRARY_BASES = {
    "openssl-1.0.0": [("openssl", v) for v in ("1.0.0t", "1.0.0q")],
    "openssl-1.0.1": [("openssl", v) for v in ("1.0.1u", "1.0.1r",
                                               "1.0.1l")],
    "openssl-1.0.2": [("openssl", v) for v in ("1.0.2u", "1.0.2m", "1.0.2f",
                                               "1.0.2")],
    "openssl-1.1.0": [("openssl", v) for v in ("1.1.0l", "1.1.0-pre3")],
    "wolfssl-2": [("wolfssl", v) for v in ("2.9.0", "2.6.0")],
    "wolfssl-3": [("wolfssl", v) for v in ("3.15.3-stable", "3.12.0-stable",
                                           "3.9.0")],
    "mbedtls-1.3": [("mbedtls", v) for v in ("1.3.22", "1.3.16", "1.3.10")],
    "mbedtls-2": [("mbedtls", v) for v in ("2.16.4", "2.7.10", "2.4.2")],
}

_LIB_MODULES = {"openssl": openssl_lib, "wolfssl": wolfssl_lib,
                "mbedtls": mbedtls_lib}

#: Mutations (and weights) used when deriving non-exact stacks.
_MUTATIONS = ("custom", "component", "reorder", "similar", "extensions")
_MUTATION_WEIGHTS = (0.46, 0.06, 0.01, 0.36, 0.11)

#: Visit probability of the big common domains, tuned toward Table 15's
#: device-reach column.
_COMMON_VISIT_P = {
    "amazon.com": 0.26, "google.com": 0.24, "googleapis.com": 0.19,
    "gstatic.com": 0.15, "amazonaws.com": 0.11, "doubleclick.net": 0.105,
    "cloudfront.net": 0.065, "googleusercontent.com": 0.066,
    "media-amazon.com": 0.042, "amcs-tachyon.com": 0.038,
    "sentry-cdn.com": 0.034, "ssl-images-amazon.com": 0.032,
    "google-analytics.com": 0.028, "ggpht.com": 0.045,
}
_DEFAULT_COMMON_P = 0.015

#: FQDN host-name tokens cycled per SLD.
_HOST_TOKENS = ("api", "www", "cdn", "iot", "app", "data", "time", "ota",
                "log", "push", "sync", "events", "device", "cloud", "a2",
                "edge", "mqtt", "auth", "media", "img")

#: Vendors whose TLS stacks never coincide with other vendors' — their
#: whole fingerprint set is unique (the DoC_vendor = 1 cohort, ~20% of
#: vendors in Figure 2).
STANDALONE_VENDORS = frozenset({
    "Canary", "ecobee", "Withings", "Vera", "Nanoleaf", "Fing", "Obihai",
    "Tuya", "Sleep number", "VMware", "Yamaha", "Amcrest", "Belkin",
    # One company / one platform: their stack sets must coincide exactly
    # (Table 4's Jaccard 1.0 and [0.7, 1) pairs), so no commodity noise.
    "SiliconDust", "HDHomeRun", "Sharp", "TCL",
})

#: Org names the private vendor CAs sign under (Section 5.2 footnote 5).
PRIVATE_CA_ORGS = {
    "Roku": "Roku",
    "Samsung": "Samsung Electronics",
    "Nintendo": "Nintendo",
    "Sony": "Sony Computer Entertainment",
    "Tesla": "Tesla Motor Services",
    "Google": "Nest Labs",
    "Sense": "Sense Labs",
    "DirecTV": "ATT Mobility and Entertainment",
    "LG": "LG Electronics",
    "Canary": "Canary Connect",
    "Philips": "Philips",
    "Obihai": "Obihai Technology",
    "Dish Network": "EchoStar",
    "Tuya": "Tuya",
    "ecobee": "ecobee",
}


@dataclass(frozen=True)
class ServerSpec:
    """One fully resolved server endpoint (an SNI) in the world."""

    fqdn: str
    sld: str
    owner: str
    issuer: str
    chain: str = "ok"
    validity_days: float = None
    expired_not_after: str = None
    cn_mismatch: bool = False
    ct_absent: bool = False
    share: str = None
    sdk_stack: str = None
    unreachable: bool = False
    geo_variant: bool = False
    ip_count: int = 2
    audience: str = "common"

    def replace(self, **changes):
        return ServerSpec(**{**self.__dict__, **changes})


@dataclass
class World:
    """Everything the analyses and the prober consume."""

    seed: int
    profiles: tuple
    users: list = field(default_factory=list)
    devices: list = field(default_factory=list)
    records: list = field(default_factory=list)
    servers: list = field(default_factory=list)
    sdk_stacks: dict = field(default_factory=dict)
    funnel: dict = field(default_factory=dict)

    def servers_by_sld(self):
        by_sld = {}
        for spec in self.servers:
            by_sld.setdefault(spec.sld, []).append(spec)
        return by_sld

    def reachable_servers(self):
        return [spec for spec in self.servers if not spec.unreachable]

    def device_by_id(self):
        return {device.device_id: device for device in self.devices}

    def vendor_names(self):
        return [profile.name for profile in self.profiles]

    def profile_by_name(self):
        return {profile.name: profile for profile in self.profiles}


class WorldGenerator:
    """Builds a :class:`World` deterministically from a seed."""

    def __init__(self, seed=2023):
        self.seed = seed
        self._factory = StackFactory(seed=seed)
        self._commodity = None

    # --- public entry ---------------------------------------------------------

    def generate(self):
        world = World(seed=self.seed, profiles=VENDOR_PROFILES)
        self._build_servers(world)
        self._commodity = self._build_commodity_pool()
        pool_stacks = self._build_pool_stacks()
        world.sdk_stacks = self._build_sdk_stacks()
        vendor_stacks = self._build_vendor_stacks(pool_stacks)
        self._build_devices(world, vendor_stacks, pool_stacks)
        self._assign_users(world)
        self._emit_records(world)
        self._apply_rare_sni_filter(world)
        return world

    # --- stack derivation helpers ----------------------------------------------

    def _base_fingerprint(self, library_key, rng):
        if library_key == "curl-openssl":
            builds = curl_lib.openssl_build_fingerprints(limit=400)
            return rng.choice(builds)
        family, version = rng.choice(LIBRARY_BASES[library_key])
        return _LIB_MODULES[family].fingerprint_for(version)

    def _derive(self, library_key, name, *, mutation, hygiene, scope,
                profile=None, rng=None, allow_severe=False):
        rng = rng or stable_rng(self.seed, "derive", name, scope)
        base = self._base_fingerprint(library_key, rng)
        grease = bool(profile and rng.random() < profile.grease_rate)
        ocsp = bool(profile and rng.random() < profile.ocsp_rate)
        fallback = bool(profile and allow_severe
                        and rng.random() < profile.fallback_rate)
        stack = self._factory.derive(
            base, name, mutation=mutation, hygiene=hygiene, scope=scope,
            grease=grease, ocsp=ocsp, fallback_scsv=fallback,
            allow_severe=allow_severe)
        return self._ensure_sni(stack)

    @staticmethod
    def _ensure_sni(stack):
        """Devices always send SNI; the extension list must reflect that."""
        if int(Ext.SERVER_NAME) in stack.extensions:
            return stack
        return TLSStack(
            name=stack.name, tls_version=stack.tls_version,
            ciphersuites=stack.ciphersuites,
            extensions=(int(Ext.SERVER_NAME),) + stack.extensions,
            origin_library=stack.origin_library, mutation=stack.mutation)

    def _pick_mutation(self, rng, shared=False):
        """Pick a mutation kind.

        ``shared`` stacks (vendor bases, pools, SDKs) avoid the
        ``extensions``/``reorder`` mutations: a widely deployed stack whose
        suite list equals a library default would multiply "exact"
        semantic matches across every device carrying it (Appendix B.2's
        unit is the {device, suite list} tuple).
        """
        mutations, weights = _MUTATIONS, _MUTATION_WEIGHTS
        if shared:
            mutations = ("custom", "component", "similar", "extensions",
                         "reorder")
            weights = (0.50, 0.08, 0.28, 0.12, 0.02)
        roll, acc = rng.random(), 0.0
        for mutation, weight in zip(mutations, weights):
            acc += weight
            if roll < acc:
                return mutation
        return mutations[0]

    # --- servers ------------------------------------------------------------------

    def _build_servers(self, world):
        rng = stable_rng(self.seed, "servers")
        domains = list(catalog.EXPLICIT_DOMAINS)
        explicit_slds = {d.sld for d in domains}
        for profile in VENDOR_PROFILES:
            for sld in profile.domains:
                if sld in explicit_slds:
                    continue
                issuer = self._default_issuer(profile, rng)
                chain = "leaf_only" if profile.exclusive_ca else "ok"
                validity = None
                if issuer in PRIVATE_CA_ORGS.values() and profile.ca_validity_days:
                    validity = profile.ca_validity_days[0]
                domains.append(catalog.DomainSpec(
                    sld=sld, owner=profile.name, issuer=issuer,
                    groups=(catalog.FqdnGroup(
                        count=rng.randint(1, 3), chain=chain,
                        validity_days=validity),),
                    audience=f"vendor:{profile.name}"))
                explicit_slds.add(sld)
        filler_count = TARGET_SLD_COUNT - len(domains)
        filler_names = catalog.filler_domain_names(max(filler_count, 0))
        current_fqdns = sum(d.fqdn_count for d in domains)
        remaining = max(TARGET_SNI_COUNT - current_fqdns, filler_count)
        base_each = max(1, remaining // max(filler_count, 1))
        leftover = remaining - base_each * filler_count
        for i, sld in enumerate(filler_names):
            count = base_each + (1 if i < leftover else 0)
            domains.append(catalog.DomainSpec(
                sld=sld, owner=catalog.filler_org(i),
                issuer=self._weighted_issuer(rng),
                groups=(catalog.FqdnGroup(count=count,
                                          wildcard=rng.random() < 0.24,
                                          ips=rng.choice((1, 1, 1, 2, 3))),),
                audience="apps"))
        specs = []
        for domain in domains:
            index = 0
            for group in domain.groups:
                for _ in range(group.count):
                    if group.cn_mismatch:
                        fqdn = f"a2.{domain.sld}"
                    else:
                        token = _HOST_TOKENS[index % len(_HOST_TOKENS)]
                        suffix = "" if index < len(_HOST_TOKENS) else str(
                            index // len(_HOST_TOKENS))
                        fqdn = f"{token}{suffix}.{domain.sld}"
                    share = group.share
                    if share is None and group.wildcard:
                        share = f"wildcard:{domain.sld}"
                    specs.append(ServerSpec(
                        fqdn=fqdn, sld=domain.sld, owner=domain.owner,
                        issuer=group.issuer or domain.issuer,
                        chain=group.chain,
                        validity_days=group.validity_days,
                        expired_not_after=group.expired_not_after,
                        cn_mismatch=group.cn_mismatch,
                        ct_absent=group.ct_absent,
                        share=share, sdk_stack=group.sdk_stack,
                        unreachable=group.unreachable,
                        geo_variant=group.geo_variant,
                        ip_count=group.ips, audience=domain.audience))
                    index += 1
        specs = specs[:TARGET_SNI_COUNT]
        unreachable = sum(1 for s in specs if s.unreachable)
        mutable = [i for i, s in enumerate(specs)
                   if not s.unreachable and s.audience == "apps"]
        rng.shuffle(mutable)
        for i in mutable[:max(0, TARGET_UNREACHABLE - unreachable)]:
            specs[i] = specs[i].replace(unreachable=True)
        world.servers = specs

    @staticmethod
    def _default_issuer(profile, rng):
        if profile.exclusive_ca:
            return PRIVATE_CA_ORGS.get(profile.name, profile.name)
        if profile.own_ca and rng.random() < 0.5:
            org = PRIVATE_CA_ORGS.get(profile.name)
            if org:
                return org
        return WorldGenerator._weighted_issuer(rng)

    @staticmethod
    def _weighted_issuer(rng):
        total = sum(w for _n, w in catalog.FILLER_ISSUER_WEIGHTS)
        roll = rng.uniform(0, total)
        acc = 0.0
        for name, weight in catalog.FILLER_ISSUER_WEIGHTS:
            acc += weight
            if roll < acc:
                return name
        return catalog.FILLER_ISSUER_WEIGHTS[0][0]

    # --- stacks --------------------------------------------------------------------

    def _build_commodity_pool(self):
        """Commodity builds shipped verbatim on devices of several vendors.

        Identical third-party builds (httpd/libcurl images, chipset SDKs,
        Android components) land on unrelated vendors\' devices and produce
        the paper\'s *shared non-standard fingerprints* (Table 2\'s degree
        distribution).  Each build is assigned to a vendor group up front:
        ~85 builds shared by exactly two vendors, ~60 by small groups of
        3–5, and ~22 ubiquitous builds reaching 6+ vendors.
        """
        rng = stable_rng(self.seed, "commodity-groups")
        library_keys = [key for key in LIBRARY_BASES
                        if key != "openssl-1.0.0"]
        # Commodity builds concentrate on high-volume vendors; small
        # brands ship single-purpose firmware, so their pairwise overlaps
        # stay driven by explicit supply-chain pools (Table 4).
        members_pool = [p for p in VENDOR_PROFILES
                        if p.name not in STANDALONE_VENDORS
                        and p.devices >= 25]
        vendor_names = [p.name for p in members_pool]
        vendor_weights = [p.devices ** 0.5 for p in members_pool]
        group_sizes = [2] * 100 + [rng.randint(3, 5) for _ in range(70)] \
            + [rng.randint(6, 12) for _ in range(17)]
        assignments = []
        for i, size in enumerate(group_sizes):
            build_rng = stable_rng(self.seed, "commodity", i)
            library_key = library_keys[i % len(library_keys)]
            stack = self._derive(
                library_key, f"commodity/{i}",
                mutation=self._pick_mutation(build_rng, shared=True),
                hygiene=0.45, scope=("commodity", i), rng=build_rng)
            members = set()
            while len(members) < size:
                members.add(rng.choices(vendor_names,
                                        weights=vendor_weights, k=1)[0])
            assignments.append((stack, frozenset(members)))
        return assignments

    def _exact_device_plan(self):
        """vendor → {device index → [stack]} for exact library stacks.

        Only a handful of devices run an unmodified known-library client
        (the paper's 23 matched fingerprints across 2,014 devices), so
        exact stacks attach to specific devices instead of joining the
        vendor-wide base rotation.  Corpus keys are handed out without
        repetition so each exact stack is a distinct matched fingerprint.
        """
        rng = stable_rng(self.seed, "exact-keys")
        curl_pool = {}
        for build in curl_lib.openssl_build_fingerprints(limit=3000):
            if build.tls_version != TLSVersion.TLS_1_3:
                curl_pool.setdefault(build.key(), build)
        curl_queue = sorted(curl_pool.values(), key=lambda b: b.version)
        rng.shuffle(curl_queue)
        mbed_queue = [mbedtls_lib.fingerprint_for(v)
                      for v in ("2.16.4", "1.3.22", "2.7.10", "1.2.19")]
        plan = {}
        for profile in VENDOR_PROFILES:
            for i in range(profile.exact_stacks):
                library = profile.exact_library or profile.library
                if library == "mbedtls" and mbed_queue:
                    base = mbed_queue.pop(0)
                elif library == "openssl":
                    base = openssl_lib.fingerprint_for("1.0.2u")
                elif curl_queue:
                    base = curl_queue.pop(0)
                else:
                    base = self._exact_base(library, profile.name, i)
                stack = self._factory.derive(
                    base, f"{profile.name}/exact/{i}", mutation="exact",
                    scope=(profile.name, "exact", i))
                attach_rng = stable_rng(self.seed, "exact-attach",
                                        profile.name, i)
                for _ in range(attach_rng.randint(1, 3)):
                    index = attach_rng.randrange(profile.devices)
                    plan.setdefault(profile.name, {}).setdefault(
                        index, []).append(stack)
        return plan

    def _commodity_device_plan(self):
        """vendor → {device index → [stack]} for commodity attachments."""
        plan = {}
        for i, (stack, members) in enumerate(self._commodity):
            for vendor in members:
                rng = stable_rng(self.seed, "commodity-attach", i, vendor)
                profile = next(p for p in VENDOR_PROFILES
                               if p.name == vendor)
                count = 1 if profile.devices < 30 else rng.randint(1, 3)
                for _ in range(count):
                    index = rng.randrange(profile.devices)
                    plan.setdefault(vendor, {}).setdefault(
                        index, []).append(stack)
        return plan

    def _build_pool_stacks(self):
        pools = {}
        for pool_name, config in SHARED_POOLS.items():
            stacks = []
            for i in range(config["stacks"]):
                rng = stable_rng(self.seed, "pool", pool_name, i)
                stacks.append(self._derive(
                    config["library"], f"pool/{pool_name}/{i}",
                    mutation=self._pick_mutation(rng),
                    hygiene=0.45, scope=(pool_name, i), rng=rng))
            pools[pool_name] = stacks
        return pools

    def _build_sdk_stacks(self):
        built = {}
        for sdk in sdks.SDKS.values():
            for stack_spec in sdk.stacks:
                rng = stable_rng(self.seed, "sdk", stack_spec.key)
                built[stack_spec.key] = self._derive(
                    stack_spec.library, f"sdk/{stack_spec.key}",
                    mutation=self._pick_mutation(rng, shared=True),
                    hygiene=stack_spec.hygiene,
                    scope=(stack_spec.key,), rng=rng)
        return built

    def _build_vendor_stacks(self, pool_stacks):
        """Vendor-wide stacks: base stacks, exact stacks, pool memberships."""
        vendor_stacks = {}
        for profile in VENDOR_PROFILES:
            rng = stable_rng(self.seed, "vendor", profile.name)
            stacks = []
            for i in range(profile.base_stacks):
                stacks.append(self._derive(
                    profile.library, f"{profile.name}/base/{i}",
                    mutation=self._pick_mutation(rng, shared=True),
                    hygiene=profile.hygiene, scope=(profile.name, i),
                    profile=profile, rng=rng))
            for pool_name in profile.pools:
                stacks.extend(pool_stacks[pool_name])
            vendor_stacks[profile.name] = stacks
        return vendor_stacks

    def _exact_base(self, library_key, vendor, index):
        """Pick a known-library fingerprint for an exact stack."""
        rng = stable_rng(self.seed, "exact", vendor, index)
        if library_key == "curl-openssl":
            builds = curl_lib.openssl_build_fingerprints(limit=3000)
            distinct = {}
            for build in builds:
                if build.tls_version == TLSVersion.TLS_1_3:
                    continue
                distinct.setdefault(build.key(), build)
            choices = sorted(distinct.values(), key=lambda b: b.version)
            return choices[rng.randrange(len(choices))]
        if library_key == "openssl":
            return openssl_lib.fingerprint_for("1.0.2u")
        if library_key == "mbedtls":
            return mbedtls_lib.fingerprint_for(
                rng.choice(["2.16.4", "1.3.22"]))
        return self._base_fingerprint(library_key, rng)

    # --- devices -------------------------------------------------------------------

    def _type_app_plan(self, world):
        """(vendor, dtype) → (stacks, routing) for type-specific apps.

        Applications installed per product line each carry their own TLS
        stack and talk to their own backend SLD — producing Section 4.4's
        *server-specific fingerprints*: every device of the type exhibits
        the app's fingerprint exactly when visiting the app's servers.
        """
        fqdns_by_sld = {}
        for spec in world.reachable_servers():
            if spec.audience == "apps":
                fqdns_by_sld.setdefault(spec.sld, []).append(spec.fqdn)
        slds = sorted(fqdns_by_sld)
        plan = {}
        for profile in VENDOR_PROFILES:
            if profile.exclusive_ca:
                continue  # their devices only talk to vendor servers
            if profile.base_stacks == 0:
                continue  # platform-only brands ship no per-type apps
            if profile.name in STANDALONE_VENDORS:
                continue  # per-device builds: nothing shared across units
            for dtype in profile.types:
                rng = stable_rng(self.seed, "typeapps", profile.name, dtype)
                if rng.random() > 0.50 or not slds:
                    continue
                stacks, routing = {}, {}
                for sld in rng.sample(slds, min(len(slds),
                                                rng.randint(1, 2))):
                    key = f"app/{sld}"
                    stacks[key] = self._derive(
                        profile.library,
                        f"{profile.name}/app/{dtype}/{sld}",
                        mutation=self._pick_mutation(rng),
                        hygiene=profile.hygiene,
                        scope=(profile.name, dtype, sld),
                        profile=profile, rng=rng)
                    for fqdn in fqdns_by_sld[sld]:
                        routing[fqdn] = key
                plan[(profile.name, dtype)] = (stacks, routing)
        return plan

    def _build_devices(self, world, vendor_stacks, pool_stacks):
        sdk_fqdn_routes = self._sdk_fqdn_routes(world)
        vendor_names = world.vendor_names()
        commodity_plan = self._commodity_device_plan()
        exact_plan = self._exact_device_plan()
        type_app_plan = self._type_app_plan(world)
        devices = []
        for profile in VENDOR_PROFILES:
            type_stacks = self._type_stacks(profile)
            vendor_commodity = commodity_plan.get(profile.name, {})
            vendor_exact = exact_plan.get(profile.name, {})
            ssl3_budget = profile.ssl3_devices
            for i in range(profile.devices):
                rng = stable_rng(self.seed, "device", profile.name, i)
                device_id = f"{profile.name.lower().replace(' ', '-')}-{i:04d}"
                dtype = profile.types[i % len(profile.types)]
                stacks, routing = {}, {}
                base_pool = vendor_stacks[profile.name] or \
                    pool_stacks[profile.pools[0]]
                if profile.name in STANDALONE_VENDORS \
                        and not profile.pools:
                    # Standalone small vendors build per-device firmware:
                    # no two devices share a stack, so the whole vendor has
                    # completely disjoint per-device fingerprint sets —
                    # Figure 2's DoC_device = 1 cohort (~20% of vendors).
                    stacks["base"] = self._derive(
                        profile.library,
                        f"{profile.name}/devbase/{device_id}",
                        mutation=self._pick_mutation(rng),
                        hygiene=profile.hygiene,
                        scope=(device_id, "base"),
                        profile=profile, rng=rng)
                elif profile.base_stacks == 0:
                    # Platform-only brands: cycle the platform stacks so the
                    # whole shared set surfaces even from a handful of
                    # devices (keeps e.g. HDHomeRun ≡ SiliconDust).
                    stacks["base"] = base_pool[i % len(base_pool)]
                else:
                    stacks["base"] = rng.choice(base_pool)
                for key, stack in type_stacks.get(dtype, {}).items():
                    stacks[key] = stack
                app_stacks, app_routing = type_app_plan.get(
                    (profile.name, dtype), ({}, {}))
                stacks.update(app_stacks)
                routing.update(app_routing)
                n_own = self._own_stack_count(profile, rng)
                for k in range(n_own):
                    if rng.random() < 0.09:
                        # A long-lived firmware image still pinned to an
                        # SSL-era library and TLS 1.0/1.1 (Table 12's tail).
                        old = self._derive(
                            "openssl-1.0.0",
                            f"{profile.name}/old/{device_id}/{k}",
                            mutation="reorder", hygiene=profile.hygiene,
                            scope=(device_id, k, "old"), rng=rng)
                        if rng.random() < 0.15:
                            old = TLSStack(
                                name=old.name,
                                tls_version=TLSVersion.TLS_1_1,
                                ciphersuites=old.ciphersuites,
                                extensions=old.extensions,
                                origin_library=old.origin_library,
                                mutation=old.mutation)
                        stacks[f"own{k}"] = old
                    else:
                        stacks[f"own{k}"] = self._derive(
                            profile.library,
                            f"{profile.name}/dev/{device_id}/{k}",
                            mutation=self._pick_mutation(rng),
                            hygiene=profile.hygiene, scope=(device_id, k),
                            profile=profile, rng=rng, allow_severe=True)
                for c, commodity_stack in enumerate(
                        vendor_commodity.get(i, ())):
                    stacks[f"commodity{c}"] = commodity_stack
                for e, exact_stack in enumerate(vendor_exact.get(i, ())):
                    stacks[f"exact{e}"] = exact_stack
                if ssl3_budget > 0 and rng.random() < (
                        ssl3_budget / max(1, profile.devices - i)):
                    ssl3_budget -= 1
                    stacks["legacy"] = self._legacy_stack(profile, device_id)
                member_sdks = set(profile.sdks)
                for sdk_name, members in sdks.IMPLICIT_SDK_MEMBERS.items():
                    if profile.name in members:
                        member_sdks.add(sdk_name)
                for sdk_name in sorted(member_sdks):
                    if sdk_name in profile.sdks and rng.random() > 0.8:
                        continue  # not every unit carries every app
                    for fqdn, stack_key in sdk_fqdn_routes.get(sdk_name, ()):
                        routing[fqdn] = stack_key
                        stacks.setdefault(stack_key,
                                          world.sdk_stacks[stack_key])
                label = labels.label_identifiable(
                    rng, profile.name, dtype, vendor_names)
                devices.append(Device(
                    device_id=device_id, vendor=profile.name,
                    device_type=dtype, user_id="", label=label,
                    stacks=stacks, routing=routing))
        world.devices = devices

    #: Global damping of per-device stack production; the per-vendor rates
    #: set relative scale (Table 3 ordering), this sets the absolute level
    #: that lands the study at ~900 distinct fingerprints.
    OWN_STACK_FACTOR = 0.48

    @classmethod
    def _own_stack_count(cls, profile, rng):
        """Number of device-specific stacks (firmware revisions, apps)."""
        rate = profile.device_stack_rate * cls.OWN_STACK_FACTOR
        count = 1 if rng.random() < rate else 0
        extra_mean = max(0.0, profile.stacks_per_device - 1.2) \
            * cls.OWN_STACK_FACTOR
        while extra_mean > 0:
            if rng.random() < min(extra_mean, 1.0) * 0.5:
                count += 1
            extra_mean -= 1.0
        return count

    def _type_stacks(self, profile):
        """Stacks shared by all devices of one type (Figure 3 clusters)."""
        per_type = {}
        if profile.name in STANDALONE_VENDORS:
            return per_type  # per-device builds only; nothing shared
        if profile.base_stacks == 0:
            # Platform-only brands (Roku TVs, tuner boxes): every stack
            # comes from the shared platform, none from the brand.
            return per_type
        for j, dtype in enumerate(profile.types):
            rng = stable_rng(self.seed, "type", profile.name, dtype)
            if profile.devices < 40 and rng.random() < 0.5:
                per_type[dtype] = {}
                continue
            count = 1 if profile.devices < 40 else rng.randint(1, 2)
            per_type[dtype] = {}
            for k in range(count):
                if True:
                    per_type[dtype][f"type/{j}/{k}"] = self._derive(
                        profile.library, f"{profile.name}/type/{dtype}/{k}",
                        mutation=self._pick_mutation(rng),
                        hygiene=profile.hygiene,
                        scope=(profile.name, dtype, k),
                        profile=profile, rng=rng)
        return per_type

    def _legacy_stack(self, profile, device_id):
        rng = stable_rng(self.seed, "legacy", device_id)
        stack = self._derive(
            "openssl-1.0.0", f"{profile.name}/legacy/{device_id}",
            mutation="reorder", hygiene=0.1, scope=(device_id, "ssl3"),
            rng=rng)
        return TLSStack(
            name=stack.name, tls_version=TLSVersion.SSL_3_0,
            ciphersuites=stack.ciphersuites, extensions=stack.extensions,
            origin_library=stack.origin_library, mutation="custom")

    def _sdk_fqdn_routes(self, world):
        """sdk name → list of (fqdn, stack_key) from the server catalog."""
        routes = {}
        stack_to_sdk = {}
        for sdk in sdks.SDKS.values():
            for stack in sdk.stacks:
                stack_to_sdk[stack.key] = sdk.name
        for spec in world.servers:
            if spec.sdk_stack and not spec.unreachable:
                sdk_name = stack_to_sdk[spec.sdk_stack]
                routes.setdefault(sdk_name, []).append(
                    (spec.fqdn, spec.sdk_stack))
        return routes

    # --- users ---------------------------------------------------------------------

    def _assign_users(self, world):
        rng = stable_rng(self.seed, "users")
        regions = ["us"] * 6 + ["eu"] * 3 + ["asia"] * 1
        users = [User(user_id=f"user-{i:04d}", region=rng.choice(regions))
                 for i in range(TARGET_USERS)]
        world.users = users
        devices = list(world.devices)
        rng.shuffle(devices)
        # Every user owns at least one device; extra devices skew toward a
        # smaller set of multi-device "enthusiast" homes.
        for user, device in zip(users, devices[:len(users)]):
            device.user_id = user.user_id
        for device in devices[len(users):]:
            if rng.random() < 0.55:
                device.user_id = users[rng.randrange(len(users) // 4)].user_id
            else:
                device.user_id = users[rng.randrange(len(users))].user_id

    # --- capture --------------------------------------------------------------------

    def _emit_records(self, world):
        spec_by_fqdn = {spec.fqdn: spec for spec in world.servers}
        reachable = world.reachable_servers()
        common = [s for s in reachable
                  if s.audience == "common" and not s.sdk_stack]
        apps = [s for s in reachable if s.audience == "apps"]
        by_category, by_vendor = {}, {}
        for spec in reachable:
            if spec.audience.startswith("category:"):
                by_category.setdefault(
                    spec.audience.split(":", 1)[1], []).append(spec)
            elif spec.audience.startswith("vendor:"):
                by_vendor.setdefault(
                    spec.audience.split(":", 1)[1], []).append(spec)
        profile_by_name = world.profile_by_name()
        records = []
        for device in world.devices:
            rng = stable_rng(self.seed, "traffic", device.device_id)
            profile = profile_by_name[device.vendor]
            destinations = self._pick_destinations(
                device, profile, rng, common, by_category, by_vendor, apps)
            routed_keys = set(device.routing.values())
            plain_keys = [k for k in device.stacks
                          if k not in routed_keys and k != "legacy"]
            if "legacy" in device.stacks and destinations:
                # SSL 3.0 proposals are rare one-off events (Table 12).
                records.append(self._capture(
                    device, device.stacks["legacy"],
                    destinations[0], rng))
                if rng.random() < 0.2 and len(destinations) > 1:
                    records.append(self._capture(
                        device, device.stacks["legacy"],
                        destinations[1], rng))
            plain_index = 0
            for fqdn in destinations:
                if fqdn in device.routing:
                    stack = device.stacks[device.routing[fqdn]]
                elif plain_keys:
                    # Cycle the device's non-SDK stacks across destinations
                    # so every installed stack surfaces in the capture.
                    key = plain_keys[plain_index % len(plain_keys)]
                    plain_index += 1
                    stack = device.stacks[key]
                else:
                    stack = device.stacks["base"]
                records.append(self._capture(device, stack, fqdn, rng))
                if rng.random() < 0.06:
                    records.append(self._capture(device, stack, fqdn, rng))
        # Coverage pass: the paper's SNI list comes from the capture, so
        # every reachable server must be seen from ≥ 3 users.
        records.extend(self._ensure_coverage(world, records, by_vendor))
        # A handful of niche hosts observed from ≤ 2 users; the funnel
        # filter removes them (and their devices contribute nothing else).
        rare_rng = stable_rng(self.seed, "rare")
        for i in range(24):
            device = world.devices[rare_rng.randrange(len(world.devices))]
            fqdn = f"app.rare-service-{i}.com"
            records.append(self._capture(
                device, device.stacks["base"], fqdn, rare_rng))
        records.sort(key=lambda r: (r.timestamp, r.device_id))
        world.records = records

    def _pick_destinations(self, device, profile, rng, common, by_category,
                           by_vendor, apps):
        destinations = []
        own = by_vendor.get(profile.name, [])
        if own and (profile.exclusive_ca or rng.random() < 0.35):
            k = min(len(own), rng.randint(1, 2))
            destinations.extend(s.fqdn for s in rng.sample(own, k))
        if profile.exclusive_ca:
            # Canary/Tuya/Obihai devices talk only to vendor-signed
            # servers (Section 5.2).
            return destinations
        if device.routing:
            routed = sorted(device.routing)
            k = min(len(routed), rng.randint(2, 3))
            destinations.extend(rng.sample(routed, k))
        for spec in common:
            per_sld = max(1, sum(1 for s in common if s.sld == spec.sld))
            p = _COMMON_VISIT_P.get(spec.sld, _DEFAULT_COMMON_P)
            if rng.random() < (p / per_sld) * 1.1:
                destinations.append(spec.fqdn)
        for spec in by_category.get(profile.category, []):
            if rng.random() < 0.06:
                destinations.append(spec.fqdn)
        # Occasional background chatter to other application servers
        # (with whatever stack the round-robin assigns — no server tie).
        for spec in apps:
            if rng.random() < 0.004:
                destinations.append(spec.fqdn)
        seen, out = set(), []
        for fqdn in destinations:
            if fqdn not in seen:
                seen.add(fqdn)
                out.append(fqdn)
        if not out:
            # Every device phones home at least once during 15 months.
            fallback_pool = own or common
            if fallback_pool:
                out.append(rng.choice(fallback_pool).fqdn)
        return out

    def _ensure_coverage(self, world, records, by_vendor):
        """Add visits so each reachable SNI is observed from ≥ 3 users."""
        rng = stable_rng(self.seed, "coverage")
        users_by_sni = {}
        for record in records:
            users_by_sni.setdefault(record.sni, set()).add(record.user_id)
        devices_by_vendor, devices_by_category = {}, {}
        devices_by_routed_sld = {}
        profile_by_name = world.profile_by_name()
        spec_by_fqdn = {spec.fqdn: spec for spec in world.servers}
        for device in world.devices:
            devices_by_vendor.setdefault(device.vendor, []).append(device)
            category = profile_by_name[device.vendor].category
            devices_by_category.setdefault(category, []).append(device)
            for routed_fqdn in device.routing:
                routed = spec_by_fqdn.get(routed_fqdn)
                if routed is not None:
                    devices_by_routed_sld.setdefault(
                        routed.sld, set()).add(device.device_id)
        device_by_id = world.device_by_id()
        extra = []
        for spec in world.reachable_servers():
            seen_users = users_by_sni.get(spec.fqdn, set())
            if len(seen_users) >= 3:
                continue
            if spec.audience.startswith("vendor:"):
                pool = devices_by_vendor.get(
                    spec.audience.split(":", 1)[1], [])
            elif spec.audience.startswith("category:"):
                pool = devices_by_category.get(
                    spec.audience.split(":", 1)[1], [])
            elif spec.sdk_stack:
                pool = [d for d in world.devices if spec.fqdn in d.routing]
            elif spec.audience == "sdk":
                # Platform-owned hosts without an explicit SDK stack (e.g.
                # roku.com's with-root group) are still only visited by
                # devices of the platform's member vendors; domains no SDK
                # routes (rokutime.com) fall back to the owner's devices.
                member_ids = devices_by_routed_sld.get(spec.sld, set())
                pool = [device_by_id[i] for i in sorted(member_ids)] or \
                    devices_by_vendor.get(spec.owner, [])
            else:
                routed = [d for d in world.devices
                          if spec.fqdn in d.routing]
                pool = routed or [
                    d for d in world.devices
                    if not profile_by_name[d.vendor].exclusive_ca]
            candidates = [d for d in pool if d.user_id not in seen_users]
            rng.shuffle(candidates)
            distinct_users = set()
            for device in candidates:
                if len(seen_users) + len(distinct_users) >= 3:
                    break
                if device.user_id in distinct_users:
                    continue
                distinct_users.add(device.user_id)
                stack_key = device.routing.get(spec.fqdn,
                                               device.default_stack)
                stack = device.stacks.get(stack_key,
                                          device.stacks["base"])
                extra.append(self._capture(device, stack, spec.fqdn, rng))
        return extra

    def _capture(self, device, stack, fqdn, rng):
        """Emit one ClientHello as wire bytes and parse it back."""
        timestamp = rng.randint(timeline.CAPTURE_START, timeline.CAPTURE_END)
        hello = ClientHello(
            version=stack.tls_version,
            ciphersuites=list(stack.ciphersuites),
            extensions=list(stack.extensions),
            sni=fqdn,
            random=bytes(rng.getrandbits(8) for _ in range(32)),
        )
        parsed = ClientHello.from_bytes(hello.to_bytes())
        return ClientHelloRecord(
            device_id=device.device_id, vendor=device.vendor,
            device_type=device.device_type, user_id=device.user_id,
            timestamp=timestamp, tls_version=parsed.version,
            ciphersuites=tuple(parsed.ciphersuites),
            extensions=tuple(parsed.extensions), sni=parsed.sni)

    # --- funnel ---------------------------------------------------------------------

    def _apply_rare_sni_filter(self, world):
        """Reproduce the Section 3 funnel: drop unidentifiable labels and
        SNIs observed from two or fewer users."""
        rng = stable_rng(self.seed, "funnel")
        vendor_names = world.vendor_names()
        unidentifiable = [
            "upstairs thing", "device", "mystery box", "john's iphone",
            "work laptop", "old android tablet", "media pc",
            "basement gadget", "???", "smart thing",
        ]
        dropped = sum(
            1 for i in range(180)
            if labels.identify(rng.choice(unidentifiable), vendor_names)[0]
            is None)
        users_by_sni = {}
        for record in world.records:
            users_by_sni.setdefault(record.sni, set()).add(record.user_id)
        rare = {sni for sni, us in users_by_sni.items() if len(us) <= 2}
        kept = [r for r in world.records if r.sni not in rare]
        world.funnel = {
            "unidentified_labels_dropped": dropped,
            "rare_snis_filtered": len(rare),
            "records_before_filter": len(world.records),
            "records_after_filter": len(kept),
        }
        world.records = kept
