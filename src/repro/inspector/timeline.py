"""Study timeline constants (all POSIX seconds, UTC).

The ClientHello capture ran April 29 2019 – August 1 2020; server probing
happened in April 2022 (hence the 43 unreachable SNIs); the lab dataset
spans 2017–2021 (Appendix C.4.2).
"""

import calendar

_SECONDS_PER_DAY = 86400


def _ts(year, month, day):
    return calendar.timegm((year, month, day, 0, 0, 0))


CAPTURE_START = _ts(2019, 4, 29)
CAPTURE_END = _ts(2020, 8, 1)
PROBE_TIME = _ts(2022, 4, 15)
LAB_START = _ts(2017, 1, 1)
LAB_END = _ts(2021, 6, 30)

#: Reference "world creation" time: CAs and long-lived certs predate capture.
WORLD_EPOCH = _ts(2015, 1, 1)


def days(n):
    """Convert days to seconds."""
    return int(n * _SECONDS_PER_DAY)


def parse_date(text):
    """Parse ``YYYY-MM-DD`` into POSIX seconds."""
    year, month, day = (int(part) for part in text.split("-"))
    return _ts(year, month, day)
