"""Crowdsourced IoT dataset substrate (IoT Inspector simulation).

The paper's client-side analysis consumes a crowdsourced capture of TLS
ClientHellos from 2,014 consumer IoT devices (65 vendors, 721 users).
That dataset is proprietary; this subpackage replaces it with a *generative
model of the IoT ecosystem* that encodes the paper's explanatory mechanisms
as causes:

- vendors derive customized TLS stacks from known libraries
  (:mod:`repro.inspector.stacks`),
- device types and individual devices layer further stacks on top
  (firmware revisions, installed applications),
- shared SDKs (Roku OS, Sonos SDK, Netflix client, ...) carry their own
  stacks across vendor boundaries (:mod:`repro.inspector.sdks`),
- supply-chain partnerships make some vendor pairs share stack sets
  outright (:mod:`repro.inspector.vendors`),
- users label their devices noisily; identification rules recover
  vendor/type (:mod:`repro.inspector.labels`).

A seeded :class:`~repro.inspector.generator.WorldGenerator` synthesizes the
whole ecosystem; captures are emitted as real ClientHello bytes and parsed
back into records, mirroring how IoT Inspector observes traffic.
"""

from repro.inspector.model import (
    ClientHelloRecord,
    Device,
    DeviceType,
    TLSStack,
    User,
    Vendor,
)
from repro.inspector.dataset import InspectorDataset
from repro.inspector.generator import WorldGenerator, World

__all__ = [
    "ClientHelloRecord",
    "Device",
    "DeviceType",
    "TLSStack",
    "User",
    "Vendor",
    "InspectorDataset",
    "WorldGenerator",
    "World",
]
