"""Descriptive statistics of the capture (paper Section 3).

The paper characterizes its dataset before analyzing it: 2,014 devices of
286 models across 65 vendors and 721 users, 11,439 ClientHellos over 15
months, multiple devices per product (e.g. 75 Wyze cameras), and an
intermittent crowdsourced capture.  This module computes the same
description of our capture, plus the funnel statistics the generator
records (unidentifiable labels dropped, rare SNIs filtered).
"""

from collections import Counter
from dataclasses import dataclass

from repro.inspector.timeline import CAPTURE_END, CAPTURE_START


@dataclass(frozen=True)
class CaptureDescription:
    """The Section 3 numbers for one capture."""

    device_count: int
    vendor_count: int
    user_count: int
    record_count: int
    model_count: int
    capture_days: float
    devices_per_user_mean: float
    devices_per_user_max: int
    records_per_device_mean: float
    records_per_device_median: int
    snis: int


def describe(dataset):
    """Compute a :class:`CaptureDescription` for a dataset."""
    devices_per_user = Counter()
    records_per_device = Counter()
    models = set()
    first, last = None, None
    for record in dataset.records:
        records_per_device[record.device_id] += 1
        models.add((record.vendor, record.device_type))
        if first is None or record.timestamp < first:
            first = record.timestamp
        if last is None or record.timestamp > last:
            last = record.timestamp
    for device_id in dataset.device_ids():
        devices_per_user[dataset.device_user(device_id)] += 1
    per_user = sorted(devices_per_user.values())
    per_device = sorted(records_per_device.values())
    return CaptureDescription(
        device_count=dataset.device_count,
        vendor_count=dataset.vendor_count,
        user_count=dataset.user_count,
        record_count=len(dataset),
        model_count=len(models),
        capture_days=((last or 0) - (first or 0)) / 86_400,
        devices_per_user_mean=sum(per_user) / max(1, len(per_user)),
        devices_per_user_max=per_user[-1] if per_user else 0,
        records_per_device_mean=sum(per_device) / max(1, len(per_device)),
        records_per_device_median=per_device[len(per_device) // 2]
        if per_device else 0,
        snis=len(dataset.snis()),
    )


def devices_per_product(dataset, vendor=None):
    """(vendor, device type) → device count; the paper's "75 Wyze
    cameras" style of statement."""
    counts = Counter()
    for device_id in dataset.device_ids():
        record_vendor = dataset.device_vendor(device_id)
        if vendor is not None and record_vendor != vendor:
            continue
        counts[(record_vendor, dataset.device_type(device_id))] += 1
    return dict(counts)


def capture_window_coverage(dataset, buckets=15):
    """Records per capture-month bucket (intermittency profile)."""
    span = CAPTURE_END - CAPTURE_START
    histogram = [0] * buckets
    for record in dataset.records:
        index = min(buckets - 1,
                    int((record.timestamp - CAPTURE_START) / span * buckets))
        histogram[index] += 1
    return histogram
