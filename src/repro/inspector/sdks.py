"""Shared SDK / application TLS stacks.

Section 4.4 of the paper explains non-standard fingerprints shared across
vendors by *shared applications*: an SDK (Roku OS, the Sonos SDK, the
Netflix client, ...) ships its own TLS stack, and devices exhibit that
stack's fingerprint exactly when talking to the SDK's servers.  Table 5
lists the resulting {second-level domain, fingerprint} ties.

Each :class:`SDK` owns one or more stacks; every stack routes a set of
domains.  A domain route is ``(sld, fqdn_count)`` — the generator creates
that many FQDNs under the SLD and wires device routing tables so traffic
to those hosts uses the SDK stack rather than the device's own.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SDKStack:
    """One TLS stack inside an SDK, with the FQDNs it owns.

    Attributes:
        key: routing key, unique within the whole SDK population.
        library: base library era (see :mod:`repro.inspector.stacks`).
        hygiene: security hygiene of this stack — Table 5 annotates the
            Roku-platform stacks with RC4/3DES vulnerabilities.
        routes: tuple of ``(sld, fqdn_count)`` this stack talks to.
    """

    key: str
    library: str
    hygiene: float
    routes: tuple


@dataclass(frozen=True)
class SDK:
    """A third-party application / platform component."""

    name: str
    stacks: tuple


#: The SDK population.  Membership (which vendors install which SDK) lives
#: in the vendor profiles (:mod:`repro.inspector.vendors`).
SDKS = {
    # The Roku OS platform, licensed to Insignia/Sharp/TCL TVs.  Table 5
    # shows three distinct platform stacks: the main stack (roku.com,
    # mgo.com), a media stack carrying RC4+3DES (mgo-images.com, ravm.tv),
    # and an older update stack carrying 3DES (a second roku.com group).
    "roku-os": SDK(name="roku-os", stacks=(
        SDKStack(key="roku-os/main", library="openssl-1.0.2", hygiene=0.6,
                 routes=(("roku.com", 8), ("mgo.com", 2))),
        SDKStack(key="roku-os/media", library="openssl-1.0.0", hygiene=0.1,
                 routes=(("mgo-images.com", 2), ("ravm.tv", 1))),
        SDKStack(key="roku-os/update", library="openssl-1.0.1", hygiene=0.3,
                 routes=(("roku.com", 6),)),
    )),
    # The Sonos smart-speaker SDK, embedded in Amazon and IKEA speakers.
    "sonos-sdk": SDK(name="sonos-sdk", stacks=(
        SDKStack(key="sonos-sdk/main", library="openssl-1.1.0", hygiene=0.8,
                 routes=(("sonos.com", 5),)),
    )),
    # Pandora streaming client used by Sonos (and Sonos-enabled Amazon
    # speakers) in the back-end.
    "pandora-client": SDK(name="pandora-client", stacks=(
        SDKStack(key="pandora-client/main", library="openssl-1.1.0",
                 hygiene=0.7, routes=(("pandora.com", 1),)),
    )),
    # The Netflix native client shipped on smart TVs and sticks.
    "netflix-client": SDK(name="netflix-client", stacks=(
        SDKStack(key="netflix-client/cdn", library="openssl-1.0.2",
                 hygiene=0.65, routes=(("nflxvideo.net", 5),)),
        SDKStack(key="netflix-client/api", library="openssl-1.0.2",
                 hygiene=0.6, routes=(("netflix.com", 4), ("nflxext.com", 2))),
    )),
    # The Arlo camera platform (Arlo was spun out of NETGEAR).
    "arlo-sdk": SDK(name="arlo-sdk", stacks=(
        SDKStack(key="arlo-sdk/main", library="openssl-1.0.2", hygiene=0.5,
                 routes=(("arlo.com", 2), ("netgear.com", 1))),
    )),
    # The HDHomeRun tuner firmware (SiliconDust's own product line).
    "hdhomerun": SDK(name="hdhomerun", stacks=(
        SDKStack(key="hdhomerun/main", library="openssl-1.0.2", hygiene=0.5,
                 routes=(("hdhomerun.com", 2),)),
    )),
    # Google cast-for-audio component inside Onkyo/Pioneer receivers.
    "cast-audio": SDK(name="cast-audio", stacks=(
        SDKStack(key="cast-audio/main", library="openssl-1.0.1", hygiene=0.3,
                 routes=(("cast4.audio", 1),)),
    )),
    # Google Play / account services client on Android-TV devices.
    "google-play": SDK(name="google-play", stacks=(
        SDKStack(key="google-play/main", library="openssl-1.1.0",
                 hygiene=0.75, routes=(("googleapis.com", 1),)),
    )),
}

#: SDKs whose vendors also ship the SDK in their own first-party devices
#: (HDHomeRun tuners are SiliconDust products; routing still applies).
IMPLICIT_SDK_MEMBERS = {
    "hdhomerun": ("HDHomeRun", "SiliconDust"),
}


def sdk_members(sdk_name, profiles):
    """Vendors whose devices may install ``sdk_name``."""
    members = [p.name for p in profiles if sdk_name in p.sdks]
    members.extend(IMPLICIT_SDK_MEMBERS.get(sdk_name, ()))
    return sorted(set(members))


def all_sdk_routes():
    """Every ``(sld, fqdn_count, stack_key)`` across all SDKs."""
    routes = []
    for sdk in SDKS.values():
        for stack in sdk.stacks:
            for sld, count in stack.routes:
                routes.append((sld, count, stack.key))
    return routes
