"""Profiles of the 65 device vendors in the study (Table 13).

Each profile encodes the generative knobs that produce the paper's
client-side findings:

- ``devices``: population size (2,014 devices total; e.g. 75 Wyze cameras
  as the paper notes, 118 Roku devices as in Table 5);
- ``library``: the known-library era the vendor's base stacks derive from;
- ``hygiene``: 0..1 — low-hygiene vendors keep vulnerable suites, the
  14 severe vendors of Section 4.2's footnote get < 0.2, the 7 clean
  vendors of Figure 11 get > 0.85;
- ``base_stacks`` / ``device_stack_rate`` / ``stacks_per_device``: how many
  vendor-wide stacks exist and how often a device derives its own —
  driving the DoC metrics of Sections 4.2–4.3 and Table 3;
- ``pools``: supply-chain stack pools shared across brands (Table 4's
  Jaccard pairs — e.g. HDHomeRun/SiliconDust are one company);
- ``sdks``: third-party application stacks installed on devices
  (Table 5's server-specific fingerprints);
- ``own_ca`` / ``ca_validity_days`` / ``exclusive_ca``: the 16 vendors
  that sign certificates for their own servers (Section 5.2 footnote 5),
  with the extreme validity periods of footnote 6;
- ``domains``: the vendor's own second-level domains (feeding the server
  catalog);
- ``ssl3_devices``: legacy devices still proposing SSL 3.0 (Table 12's
  footnote: Amazon 13, Synology 5, Samsung 4, LG 2, TP-Link 1, WD 1).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class VendorProfile:
    """Static configuration for one vendor (see module docstring)."""

    name: str
    index: int
    devices: int
    types: tuple
    category: str = "other"
    library: str = "openssl-1.0.2"
    hygiene: float = 0.45
    base_stacks: int = 2
    device_stack_rate: float = 0.4
    stacks_per_device: float = 1.4
    pools: tuple = ()
    sdks: tuple = ()
    own_ca: bool = False
    ca_validity_days: tuple = ()
    exclusive_ca: bool = False
    domains: tuple = ()
    ssl3_devices: int = 0
    grease_rate: float = 0.0
    ocsp_rate: float = 0.0
    fallback_rate: float = 0.0
    exact_stacks: int = 0
    exact_library: str = None


def _v(**kwargs):
    return VendorProfile(**kwargs)


#: Supply-chain stack pools: brands owned by, or manufacturing for, the same
#: company share TLS stacks outright (Section 4.4, Table 4).
SHARED_POOLS = {
    # Same company, two brand names — identical stack sets (Jaccard 1.0).
    "silicondust": {"library": "openssl-1.0.2", "stacks": 3},
    # Roku-licensed TV makers sharing the Roku OS platform stacks.
    "roku-tv": {"library": "openssl-1.0.1", "stacks": 4},
    # Arlo was spun out of NETGEAR; shared camera platform.
    "arlo-netgear": {"library": "openssl-1.0.2", "stacks": 3},
    # Onkyo and Pioneer merged their AV receiver line.
    "onkyo-pioneer": {"library": "openssl-1.0.1", "stacks": 2},
    # Sound United owns both Denon and Marantz.
    "denon-marantz": {"library": "mbedtls-2", "stacks": 2},
    # TI reference Wi-Fi modules used by several small-appliance makers.
    "ti-module": {"library": "mbedtls-1.3", "stacks": 2},
    # NAS vendors sharing a common Linux userland build: a whole zoo of
    # bundled services (each with its own TLS client) ships identically on
    # Synology/WD/QNAP boxes — the paper's Jaccard(Synology, WD) ≈ 0.2
    # despite both having large fingerprint sets.
    "nas-linux": {"library": "openssl-1.0.2", "stacks": 24},
    # Tegra-based Android TV platform (Nvidia Shield, Xiaomi Mi Box).
    "tegra-androidtv": {"library": "openssl-1.1.0", "stacks": 11},
    # Set-top boxes sharing a conditional-access middleware stack.
    "stb-middleware": {"library": "openssl-1.0.1", "stacks": 2},
}

#: All 65 vendor profiles, indexed as in the paper's Table 13.
VENDOR_PROFILES = (
    _v(name="Roku", index=1, devices=118, category="tv",
       types=("Streaming Stick", "Express", "Ultra", "Premiere", "TV"),
       library="openssl-1.0.1", hygiene=0.35, base_stacks=2,
       device_stack_rate=0.12, stacks_per_device=1.2,
       exact_stacks=1, exact_library="curl-openssl",
       pools=("roku-tv",), sdks=("roku-os", "netflix-client"),
       own_ca=True, ca_validity_days=(5000, 4748),
       domains=("roku.com", "rokutime.com"), ocsp_rate=0.3),
    _v(name="TCL", index=2, devices=40, category="tv",
       types=("Roku TV", "Android TV"), library="openssl-1.0.1",
       hygiene=0.4, base_stacks=1, device_stack_rate=0.0,
       stacks_per_device=1.0, pools=("roku-tv",),
       sdks=("roku-os", "netflix-client"), domains=()),
    _v(name="Samsung", index=3, devices=120, category="tv",
       types=("Smart TV", "SmartThings Hub", "Refrigerator", "Soundbar"),
       library="openssl-1.0.1", hygiene=0.15, base_stacks=4,
       device_stack_rate=0.5, stacks_per_device=1.6,
       sdks=("netflix-client",), own_ca=True, exact_stacks=2,
       grease_rate=0.08, fallback_rate=0.11,
       exact_library="curl-openssl",
       ca_validity_days=(25202, 10950), ssl3_devices=4,
       domains=("samsungcloudsolution.net", "samsungcloudsolution.com",
                "samsungrm.net", "samsungelectronics.com", "pavv.co.kr",
                "samsunghrm.com", "ueiwsp.com"),
       ocsp_rate=0.25),
    _v(name="Sharp", index=4, devices=25, category="tv",
       types=("Roku TV",), library="openssl-1.0.1", hygiene=0.4,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("roku-tv",), sdks=("roku-os", "netflix-client")),
    _v(name="Insignia", index=5, devices=35, category="tv",
       types=("Roku TV", "Fire TV Edition"), library="openssl-1.0.2",
       hygiene=0.4, base_stacks=2, device_stack_rate=0.0,
       stacks_per_device=1.0, pools=("roku-tv",),
       sdks=("roku-os", "netflix-client")),
    _v(name="Amazon", index=6, devices=420, category="speaker",
       types=("Echo", "Echo Dot", "Echo Show", "Echo Plus", "Fire TV",
              "Fire TV Stick", "Smart Plug", "Cloud Cam", "Ring Doorbell"),
       library="openssl-1.0.2", hygiene=0.18, base_stacks=6,
       device_stack_rate=0.40, stacks_per_device=1.6,
       sdks=("sonos-sdk", "pandora-client", "netflix-client"),
       own_ca=True, ca_validity_days=(400,),
       ssl3_devices=13, grease_rate=0.12, ocsp_rate=0.22,
       fallback_rate=0.13,
       domains=("amazon.com", "amazonalexa.com", "amazonaws.com",
                "amazonvideo.com", "media-amazon.com", "amazon-dss.com",
                "amcs-tachyon.com", "ssl-images-amazon.com"),
       exact_stacks=2, exact_library="curl-openssl"),
    _v(name="Nvidia", index=7, devices=56, category="tv",
       types=("Shield TV", "Shield Pro"), exact_stacks=1, exact_library="curl-openssl", library="openssl-1.1.0",
       hygiene=0.5, base_stacks=2, device_stack_rate=0.5,
       stacks_per_device=1.5, pools=("tegra-androidtv",),
       sdks=("google-play", "netflix-client"),
       domains=("nvidia.com", "tegrazone.com"), grease_rate=0.25,
       ocsp_rate=0.2, fallback_rate=0.18),
    _v(name="Google", index=8, devices=320, category="speaker",
       types=("Home", "Home Mini", "Chromecast", "Nest Thermostat",
              "Nest Cam", "Nest Hub", "Wifi Router"),
       library="openssl-1.1.0", hygiene=0.19, base_stacks=5,
       device_stack_rate=0.42, stacks_per_device=1.6,
       own_ca=True, ca_validity_days=(8030,),
       grease_rate=0.26, ocsp_rate=0.25, fallback_rate=0.11,
       domains=("google.com", "googleapis.com", "gstatic.com",
                "googleusercontent.com", "ggpht.com", "youtube.com",
                "ytimg.com", "doubleclick.net", "googlesyndication.com",
                "google-analytics.com", "nest.com"),
       exact_stacks=1, exact_library="curl-openssl"),
    _v(name="HP", index=9, devices=20, category="printer",
       types=("OfficeJet", "LaserJet"), library="openssl-1.0.1",
       hygiene=0.18, base_stacks=2, device_stack_rate=0.5,
       stacks_per_device=1.4, exact_stacks=1, exact_library="curl-openssl", domains=("hp.com", "hpeprint.com"),
       ocsp_rate=0.2),
    _v(name="Western Digital", index=10, devices=45, category="nas",
       types=("My Cloud", "My Cloud Mirror"), ocsp_rate=0.2, grease_rate=0.1, library="openssl-1.0.2",
       hygiene=0.17, base_stacks=1, device_stack_rate=0.95,
       stacks_per_device=1.1, pools=("nas-linux",), ssl3_devices=1,
       domains=("mycloud.com", "wdc.com"),
       exact_stacks=1, exact_library="curl-openssl"),
    _v(name="Xiaomi", index=11, devices=25, category="tv",
       types=("Mi Box", "Yeelight"), grease_rate=0.1, library="openssl-1.1.0",
       hygiene=0.45, base_stacks=0, device_stack_rate=0.0,
       stacks_per_device=1.0, pools=("tegra-androidtv",),
       sdks=("netflix-client",), domains=("mi.com", "xiaomi.com")),
    _v(name="Sony", index=12, devices=100, category="tv",
       types=("Bravia TV", "PlayStation 4", "PlayStation 3", "Soundbar"),
       library="openssl-1.0.1", hygiene=0.16, base_stacks=4,
       device_stack_rate=0.65, stacks_per_device=1.8,
       sdks=("google-play", "netflix-client"), own_ca=True,
       ca_validity_days=(3650,), grease_rate=0.08, fallback_rate=0.18,
       domains=("playstation.net", "sonyentertainmentnetwork.com",
                "sony.com"), ocsp_rate=0.25,
       exact_stacks=1, exact_library="curl-openssl"),
    _v(name="Lutron", index=13, devices=12, category="hub",
       types=("Caseta Bridge",), library="mbedtls-2", hygiene=0.19,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.2,
       exact_stacks=1, exact_library="mbedtls",
       domains=("lutron.com",)),
    _v(name="iDevices", index=14, devices=8, category="plug",
       types=("Smart Switch",), library="mbedtls-1.3", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       exact_stacks=1, exact_library="mbedtls",
       domains=("idevicesinc.com",)),
    _v(name="TP-Link", index=15, devices=38, category="plug",
       types=("Kasa Plug", "Kasa Cam", "Router"), ocsp_rate=0.2, grease_rate=0.1, library="openssl-1.0.1",
       hygiene=0.15, base_stacks=2, device_stack_rate=0.8,
       stacks_per_device=1.3, ssl3_devices=1,
       domains=("tplinkcloud.com", "tp-link.com"),
       exact_stacks=1, exact_library="curl-openssl"),
    _v(name="Vizio", index=16, devices=30, category="tv",
       types=("SmartCast TV",), grease_rate=0.15, library="openssl-1.0.1", hygiene=0.18,
       base_stacks=2, device_stack_rate=0.35, stacks_per_device=1.3,
       exact_stacks=1, exact_library="curl-openssl",
       sdks=("netflix-client",), domains=("vizio.com",), ocsp_rate=0.2),
    _v(name="Pioneer", index=17, devices=8, category="av",
       types=("AV Receiver",), library="openssl-1.0.1", hygiene=0.45,
       base_stacks=1, device_stack_rate=0.25, stacks_per_device=1.1,
       pools=("onkyo-pioneer",), sdks=("cast-audio",)),
    _v(name="Onkyo", index=18, devices=8, category="av",
       types=("AV Receiver",), library="openssl-1.0.1", hygiene=0.45,
       base_stacks=1, device_stack_rate=0.25, stacks_per_device=1.1,
       pools=("onkyo-pioneer",), sdks=("cast-audio",)),
    _v(name="wink", index=19, devices=11, category="hub",
       types=("Wink Hub",), exact_stacks=1, exact_library="curl-openssl", ocsp_rate=0.25, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.2,
       domains=("wink.com",)),
    _v(name="LG", index=20, devices=55, category="tv",
       types=("webOS TV", "ThinQ Appliance"), library="openssl-1.0.1",
       hygiene=0.17, base_stacks=3, device_stack_rate=0.6,
       stacks_per_device=1.8, sdks=("netflix-client",), own_ca=True,
       exact_stacks=1, exact_library="curl-openssl", grease_rate=0.08,
       fallback_rate=0.13,
       ca_validity_days=(3650,), ssl3_devices=2,
       domains=("lgtvsdp.com", "lge.com", "lgthinq.com"), ocsp_rate=0.2),
    _v(name="Cisco", index=21, devices=12, category="network",
       types=("Telepresence", "Router"), ocsp_rate=0.25, grease_rate=0.15, library="openssl-1.0.2",
       hygiene=0.5, base_stacks=2, device_stack_rate=0.4,
       stacks_per_device=1.2, exact_stacks=1, exact_library="curl-openssl", domains=("cisco.com", "meraki.com")),
    _v(name="Philips", index=22, devices=45, category="light",
       types=("Hue Bridge", "Hue Go", "Air Purifier"), exact_stacks=1, exact_library="mbedtls", grease_rate=0.1,
       library="openssl-1.0.2", hygiene=0.19, base_stacks=2,
       device_stack_rate=0.3, stacks_per_device=1.3, own_ca=True,
       ca_validity_days=(7300,), domains=("meethue.com", "philips.com"),
       ocsp_rate=0.2),
    _v(name="Synology", index=23, devices=48, category="nas",
       types=("DiskStation", "RT Router"), ocsp_rate=0.2, grease_rate=0.1, library="openssl-1.0.1",
       hygiene=0.05, base_stacks=3, device_stack_rate=0.9,
       stacks_per_device=3.9, pools=("nas-linux",), ssl3_devices=5,
       domains=("synology.com", "quickconnect.to"),
       exact_stacks=1, exact_library="curl-openssl"),
    _v(name="TiVo", index=24, devices=15, category="tv",
       types=("DVR", "Mini"), ocsp_rate=0.25, grease_rate=0.12, library="openssl-1.0.1", hygiene=0.3,
       base_stacks=2, device_stack_rate=0.3, stacks_per_device=1.2,
       exact_stacks=1, exact_library="curl-openssl",
       sdks=("netflix-client",), domains=("tivo.com",)),
    _v(name="Wyze", index=25, devices=75, category="camera",
       types=("Cam", "Cam Pan", "Sense"), ocsp_rate=0.2, library="openssl-1.0.2",
       hygiene=0.5, grease_rate=0.15, base_stacks=2, device_stack_rate=0.15,
       stacks_per_device=1.2, domains=("wyzecam.com", "wyze.com"),
       exact_stacks=1, exact_library="openssl"),
    _v(name="Sonos", index=26, devices=50, category="speaker",
       types=("One", "Beam", "Play:1", "Play:5"), exact_stacks=1, exact_library="curl-openssl", library="openssl-1.1.0",
       hygiene=0.9, grease_rate=0.2, base_stacks=3, device_stack_rate=0.3,
       stacks_per_device=1.3, sdks=("sonos-sdk", "pandora-client"),
       domains=("sonos.com",), ocsp_rate=0.3),
    _v(name="Amcrest", index=27, devices=10, category="camera",
       types=("IP Camera",), exact_stacks=1, exact_library="mbedtls", library="openssl-1.0.1", hygiene=0.19,
       base_stacks=1, device_stack_rate=0.4, stacks_per_device=1.2,
       domains=("amcrestcloud.com",)),
    _v(name="Panasonic", index=28, devices=15, category="tv",
       types=("Viera TV",), ocsp_rate=0.2, grease_rate=0.12, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=2, device_stack_rate=0.3, stacks_per_device=1.2,
       exact_stacks=1, exact_library="curl-openssl",
       sdks=("netflix-client",), domains=("panasonic.com",)),
    _v(name="QNAP", index=29, devices=10, category="nas",
       types=("TS NAS",), exact_stacks=1, exact_library="curl-openssl", ocsp_rate=0.25, grease_rate=0.15, library="openssl-1.0.2", hygiene=0.18,
       base_stacks=1, device_stack_rate=0.8, stacks_per_device=1.5,
       pools=("nas-linux",), domains=("qnap.com", "myqnapcloud.com")),
    _v(name="Fing", index=30, devices=4, category="network",
       types=("Fingbox",), ocsp_rate=0.3, grease_rate=0.3, library="openssl-1.1.0", hygiene=0.88,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       domains=("fing.com",)),
    _v(name="Brother", index=31, devices=12, category="printer",
       types=("Laser Printer",), ocsp_rate=0.25, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("roku-tv",), domains=("brother.com",)),
    _v(name="Dish Network", index=32, devices=8, category="tv",
       types=("Hopper", "Joey"), library="openssl-1.0.1", hygiene=0.3,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.2,
       pools=("stb-middleware",), own_ca=True, ca_validity_days=(24855,),
       domains=("dishaccess.tv", "dish.com")),
    _v(name="Skybell", index=33, devices=6, category="camera",
       types=("Video Doorbell",), library="mbedtls-1.3", hygiene=0.4,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("ti-module", "stb-middleware"), domains=("skybell.com",)),
    _v(name="NETGEAR", index=34, devices=9, category="camera",
       types=("Orbi Router", "Arlo Base"), ocsp_rate=0.25, grease_rate=0.15, library="openssl-1.0.2",
       hygiene=0.4, base_stacks=1, device_stack_rate=0.3,
       stacks_per_device=1.2, pools=("arlo-netgear",), sdks=("arlo-sdk",),
       domains=("netgear.com",)),
    _v(name="Arlo", index=35, devices=9, category="camera",
       types=("Pro Camera", "Base Station"), ocsp_rate=0.25, grease_rate=0.15, library="openssl-1.0.2",
       hygiene=0.4, base_stacks=1, device_stack_rate=0.25,
       stacks_per_device=1.2, pools=("arlo-netgear",), sdks=("arlo-sdk",),
       domains=("arlo.com",)),
    _v(name="iRobot", index=36, devices=10, category="appliance",
       types=("Roomba",), ocsp_rate=0.2, grease_rate=0.1, library="openssl-1.0.2", hygiene=0.5,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("arlo-netgear",), domains=("irobotapi.com",)),
    _v(name="Yamaha", index=37, devices=8, category="av",
       types=("MusicCast Receiver",), ocsp_rate=0.25, library="openssl-1.0.2",
       hygiene=0.6, base_stacks=1, device_stack_rate=0.3,
       stacks_per_device=1.1, domains=("yamaha.com",)),
    _v(name="Texas Instruments", index=38, devices=6, category="module",
       types=("CC3200 Module",), library="mbedtls-1.3", hygiene=0.4,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("ti-module",), domains=("ti.com",)),
    _v(name="Tesla", index=39, devices=5, category="car",
       types=("Powerwall", "Wall Connector"), ocsp_rate=0.3, library="openssl-1.0.2",
       hygiene=0.5, base_stacks=1, device_stack_rate=0.4,
       stacks_per_device=1.2, own_ca=True, ca_validity_days=(3650,),
       domains=("tesla.services", "tesla.com")),
    _v(name="Bose", index=40, devices=12, category="speaker",
       types=("SoundTouch",), ocsp_rate=0.25, grease_rate=0.15, library="mbedtls-1.3", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.2,
       pools=("ti-module",), domains=("bose.com", "bose.io")),
    _v(name="Sky", index=41, devices=6, category="tv",
       types=("Sky Q Box",), grease_rate=0.1, library="openssl-1.0.1",
       hygiene=0.4, base_stacks=1, device_stack_rate=0.0,
       stacks_per_device=1.0,
       pools=("stb-middleware",), sdks=("netflix-client",),
       domains=("sky.com",)),
    _v(name="Humax", index=42, devices=5, category="tv",
       types=("Freeview Box",), library="openssl-1.0.1", hygiene=0.4,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("stb-middleware",), sdks=("netflix-client",),
       domains=("humaxdigital.com",)),
    _v(name="Ubiquity", index=43, devices=8, category="network",
       types=("UniFi AP", "CloudKey"), ocsp_rate=0.3, grease_rate=0.3, library="openssl-1.1.0",
       hygiene=0.6, base_stacks=1, device_stack_rate=0.5,
       stacks_per_device=1.3, domains=("ubnt.com", "ui.com")),
    _v(name="Logitech", index=44, devices=8, category="hub",
       types=("Harmony Hub",), ocsp_rate=0.25, library="openssl-1.0.2", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.2,
       exact_stacks=1, exact_library="curl-openssl",
       domains=("myharmony.com", "logitech.com")),
    _v(name="Netatmo", index=45, devices=7, category="weather",
       types=("Weather Station", "Welcome Cam"), ocsp_rate=0.25, grease_rate=0.15, library="openssl-1.0.1",
       hygiene=0.3, base_stacks=1, device_stack_rate=0.3,
       stacks_per_device=1.2, exact_stacks=1, exact_library="curl-openssl", domains=("netatmo.net", "netatmo.com")),
    _v(name="SiliconDust", index=46, devices=5, category="tv",
       types=("HDHomeRun Tuner",), library="openssl-1.0.2", hygiene=0.5,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("silicondust",), domains=("hdhomerun.com",)),
    _v(name="HDHomeRun", index=47, devices=5, category="tv",
       types=("Connect Tuner",), library="openssl-1.0.2", hygiene=0.5,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("silicondust",), sdks=()),
    _v(name="Sense", index=48, devices=5, category="energy",
       types=("Energy Monitor",), ocsp_rate=0.3, grease_rate=0.2, library="mbedtls-1.3", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       pools=("ti-module",), own_ca=True, ca_validity_days=(3650,),
       domains=("sense.com",)),
    _v(name="DirecTV", index=49, devices=5, category="tv",
       types=("Genie DVR",), ocsp_rate=0.25, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       pools=("stb-middleware",), own_ca=True, ca_validity_days=(7300,),
       domains=("dtvce.com", "directv.com")),
    _v(name="Denon", index=50, devices=5, category="av",
       types=("HEOS Receiver",), ocsp_rate=0.25, grease_rate=0.2, library="mbedtls-2", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.25, stacks_per_device=1.1,
       pools=("denon-marantz",), domains=("skyegloup.com",)),
    _v(name="Marantz", index=51, devices=4, category="av",
       types=("AV Receiver",), library="mbedtls-2", hygiene=0.5,
       base_stacks=0, device_stack_rate=0.0, stacks_per_device=1.0,
       pools=("denon-marantz",)),
    _v(name="Nanoleaf", index=52, devices=4, category="light",
       types=("Light Panels",), ocsp_rate=0.3, grease_rate=0.25, library="mbedtls-2", hygiene=0.9,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       domains=("nanoleaf.me",)),
    _v(name="VMware", index=53, devices=3, category="compute",
       types=("ESXi Host",), library="openssl-1.0.2", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.5, stacks_per_device=1.2,
       domains=("vmware.com",)),
    _v(name="Obihai", index=54, devices=4, category="voip",
       types=("OBi VoIP Adapter",), library="openssl-1.0.1", hygiene=0.3,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       own_ca=True, ca_validity_days=(7300,), exclusive_ca=True,
       domains=("obitalk.com",)),
    _v(name="Canary", index=55, devices=6, category="camera",
       types=("All-in-One Camera",), library="openssl-1.0.2", hygiene=0.88,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       own_ca=True, ca_validity_days=(7240,), exclusive_ca=True,
       domains=("canaryis.com",)),
    _v(name="ecobee", index=56, devices=6, category="thermostat",
       types=("Smart Thermostat",), ocsp_rate=0.3, grease_rate=0.2, library="openssl-1.0.2", hygiene=0.87,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       own_ca=True, ca_validity_days=(7300,), domains=("ecobee.com",)),
    _v(name="Epson", index=57, devices=5, category="printer",
       types=("EcoTank Printer",), ocsp_rate=0.25, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=1, device_stack_rate=0.4, stacks_per_device=1.1,
       exact_stacks=1, exact_library="curl-openssl",
       domains=("epsonconnect.com",)),
    _v(name="IKEA", index=58, devices=6, category="light",
       types=("Tradfri Gateway", "Symfonisk Speaker"), ocsp_rate=0.25, grease_rate=0.15, library="mbedtls-2",
       hygiene=0.6, base_stacks=1, device_stack_rate=0.2,
       stacks_per_device=1.1, sdks=("sonos-sdk",), domains=("ikea.com",)),
    _v(name="Belkin", index=59, devices=22, category="plug",
       types=("Wemo Switch", "Wemo Insight"), ocsp_rate=0.2, grease_rate=0.1, library="openssl-1.0.1",
       hygiene=0.1, base_stacks=1, device_stack_rate=0.2,
       stacks_per_device=1.2, domains=("xbcs.net", "belkin.com")),
    _v(name="Nintendo", index=60, devices=15, category="console",
       types=("Switch", "Wii U"), ocsp_rate=0.2, grease_rate=0.12, library="openssl-1.0.2", hygiene=0.5,
       base_stacks=2, device_stack_rate=0.3, stacks_per_device=1.2,
       own_ca=True, ca_validity_days=(9300, 7233),
       domains=("nintendo.net", "nintendo.com")),
    _v(name="Sleep number", index=61, devices=3, category="appliance",
       types=("Smart Bed",), library="mbedtls-2", hygiene=0.5,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       domains=("sleepiq.sleepnumber.com",)),
    _v(name="Tuya", index=62, devices=3, category="platform",
       types=("Smart Plug",), library="mbedtls-1.3", hygiene=0.3,
       base_stacks=1, device_stack_rate=0.2, stacks_per_device=1.1,
       own_ca=True, ca_validity_days=(36500,), exclusive_ca=True,
       domains=("tuyaus.com", "tuyacn.com")),
    _v(name="Canon", index=63, devices=4, category="printer",
       types=("PIXMA Printer",), ocsp_rate=0.25, library="openssl-1.0.1", hygiene=0.4,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       exact_stacks=1, exact_library="curl-openssl",
       domains=("c-ij.com",)),
    _v(name="Vera", index=64, devices=3, category="hub",
       types=("Vera Controller",), library="openssl-1.0.2", hygiene=0.86,
       base_stacks=1, device_stack_rate=0.3, stacks_per_device=1.1,
       domains=("mios.com",)),
    _v(name="Withings", index=65, devices=4, category="health",
       types=("Body Scale", "Sleep Mat"), ocsp_rate=0.3, grease_rate=0.3, library="openssl-1.0.2",
       hygiene=0.89, base_stacks=1, device_stack_rate=0.2,
       stacks_per_device=1.1, domains=("withings.net", "withings.com")),
)

PROFILES_BY_NAME = {profile.name: profile for profile in VENDOR_PROFILES}

#: The 16 vendors that operate their own (private) CA — Section 5.2.
VENDOR_CA_NAMES = tuple(p.name for p in VENDOR_PROFILES if p.own_ca)

#: Vendors whose devices only visit vendor-signed servers — Section 5.2.
EXCLUSIVE_CA_VENDORS = tuple(p.name for p in VENDOR_PROFILES if p.exclusive_ca)


def total_devices():
    """Total device population across all vendor profiles."""
    return sum(profile.devices for profile in VENDOR_PROFILES)
