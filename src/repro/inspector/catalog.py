"""The IoT server catalog: every domain the synthetic devices visit.

This is the world's server-side configuration.  It encodes, as *causes*,
the paper's server-side findings:

- Table 15's most-popular SLDs with their FQDN counts;
- Table 7's chains that fail validation (private issuers presenting
  chains without a trusted root, plus the DigiCert-signed amazonaws.com
  host with a broken chain);
- Table 8's long-expired certificates (skyegloup.com, wink.com);
- Table 14's private-root and self-signed chains (including the
  ``samsunghrm.com`` chain of two identical certificates and the
  self-signed ``ueiwsp.com`` / ``dishaccess.tv`` / ``tuyaus.com`` leafs);
- the ``a2.tuyaus.com`` CN-mismatch case (Section 5.3);
- Table 9's Netflix split personality: a fully private root with
  8,150-day leafs next to a VeriSign-chained intermediate issuing
  30–396-day leafs, none logged in CT;
- the 43 SNIs that became unreachable between capture and probing.

Chain kinds (interpreted by :mod:`repro.probing.network`):

- ``ok``           — leaf + intermediates, root omitted (the RFC 5246 norm);
- ``with_root``    — full chain including the (possibly private) root;
- ``leaf_only``    — bare leaf (chain length 1);
- ``no_intermediate`` — leaf + root but missing the signing intermediate;
- ``self_signed``  — leaf signed by its own key;
- ``duplicate_leaf`` — the leaf presented twice (samsunghrm.com).
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FqdnGroup:
    """A set of same-behaviour hosts under one SLD.

    Attributes:
        count: number of FQDNs in the group.
        chain: chain kind (see module docstring).
        issuer: issuing CA org; None inherits the domain default.
        validity_days: leaf validity override.
        expired_not_after: ISO date — the leaf expired on this date (long
            before probing), as in Table 8.
        cn_mismatch: leaf omits the host from CN and SAN.
        ct_absent: public-CA leaf deliberately not logged (the 8 cases).
        share: certificate-sharing group id; all FQDNs in groups carrying
            the same id across the catalog present one shared leaf.
        wildcard: one wildcard leaf ``*.sld`` covers the whole group.
        sdk_stack: SDK stack key owning these hosts (client-side routing).
        unreachable: hosts in this group are dead at probe time (2022).
        geo_variant: CDN group serving per-vantage distinct leafs.
        ips: IP pool size per FQDN (certificate↔IP sharing, Section 5.1).
    """

    count: int
    chain: str = "ok"
    issuer: str = None
    validity_days: float = None
    expired_not_after: str = None
    cn_mismatch: bool = False
    ct_absent: bool = False
    share: str = None
    wildcard: bool = False
    sdk_stack: str = None
    unreachable: bool = False
    geo_variant: bool = False
    ips: int = 2


@dataclass(frozen=True)
class DomainSpec:
    """One second-level domain and its hosts."""

    sld: str
    owner: str
    issuer: str
    groups: tuple
    #: who visits: "common", "vendor:<Name>", "category:<cat>", "sdk"
    audience: str = "common"

    @property
    def fqdn_count(self):
        return sum(group.count for group in self.groups)


def _d(sld, owner, issuer, groups, audience="common"):
    return DomainSpec(sld=sld, owner=owner, issuer=issuer,
                      groups=tuple(groups), audience=audience)


#: Explicitly modelled domains.  FQDN counts follow Table 15 where the SLD
#: appears there; failure behaviours follow Tables 7/8/14 and Section 6.
EXPLICIT_DOMAINS = (
    # ---- Amazon properties -------------------------------------------------
    _d("amazon.com", "Amazon", "DigiCert", [
        FqdnGroup(count=30, wildcard=True, issuer="Amazon", ips=6),
        FqdnGroup(count=12, issuer="DigiCert", geo_variant=True, ips=4),
        FqdnGroup(count=14, issuer="DigiCert", ips=4),
        FqdnGroup(count=1, expired_not_after="2019-03-02",
                  issuer="Amazon"),  # arcus-uswest (Section 6.1)
    ], audience="common"),
    _d("amazonalexa.com", "Amazon", "Amazon", [
        FqdnGroup(count=2, wildcard=True, ips=8)], audience="common"),
    _d("amazonaws.com", "Amazon", "Amazon", [
        FqdnGroup(count=24, issuer="Amazon", wildcard=True, ips=10),
        FqdnGroup(count=8, issuer="DigiCert", geo_variant=True, ips=5),
        FqdnGroup(count=1, issuer="DigiCert", chain="no_intermediate"),
    ], audience="common"),
    _d("amazonvideo.com", "Amazon", "Amazon", [
        FqdnGroup(count=23, wildcard=True, geo_variant=True, ips=6)],
       audience="category:tv"),
    _d("media-amazon.com", "Amazon", "DigiCert", [FqdnGroup(count=1, ips=12)],
       audience="common"),
    _d("amazon-dss.com", "Amazon", "Amazon", [FqdnGroup(count=1)],
       audience="vendor:Amazon"),
    _d("amcs-tachyon.com", "Amazon", "Amazon", [FqdnGroup(count=1, ips=16)],
       audience="vendor:Amazon"),
    _d("ssl-images-amazon.com", "Amazon", "DigiCert", [FqdnGroup(count=1, ips=8)],
       audience="common"),
    # ---- Google properties -------------------------------------------------
    _d("google.com", "Google", "Google Trust Services", [
        FqdnGroup(count=24, share="google-mega", ips=8, geo_variant=True)],
       audience="common"),
    _d("googleapis.com", "Google", "Google Trust Services", [
        FqdnGroup(count=34, wildcard=True, ips=6),
        FqdnGroup(count=1, sdk_stack="google-play/main"),
    ], audience="common"),
    _d("gstatic.com", "Google", "Google Trust Services", [
        FqdnGroup(count=5, share="google-mega", ips=8),
        FqdnGroup(count=5, wildcard=True, ips=4)], audience="common"),
    _d("googleusercontent.com", "Google", "Google Trust Services", [
        FqdnGroup(count=6, wildcard=True, ips=4)], audience="common"),
    _d("ggpht.com", "Google", "Google Trust Services", [
        FqdnGroup(count=5, share="google-mega", ips=4)], audience="common"),
    _d("youtube.com", "Google", "Google Trust Services", [
        FqdnGroup(count=2, share="google-mega", ips=8)],
       audience="category:tv"),
    _d("ytimg.com", "Google", "Google Trust Services", [
        FqdnGroup(count=4, share="google-mega", ips=4)],
       audience="category:tv"),
    _d("doubleclick.net", "Google", "Google Trust Services", [
        FqdnGroup(count=9, wildcard=True, ips=6, geo_variant=True)],
       audience="common"),
    _d("googlesyndication.com", "Google", "Google Trust Services", [
        FqdnGroup(count=3, wildcard=True, ips=4)], audience="category:tv"),
    _d("google-analytics.com", "Google", "Google Trust Services", [
        FqdnGroup(count=2, wildcard=True, ips=6)], audience="common"),
    _d("nest.com", "Google", "Nest Labs", [
        FqdnGroup(count=3, chain="ok"),           # Table 7: private, len 2
        FqdnGroup(count=1, issuer="Google Trust Services"),
    ], audience="vendor:Google"),
    # ---- Netflix ------------------------------------------------------------
    _d("netflix.com", "Netflix", "DigiCert", [
        FqdnGroup(count=6, issuer="Netflix", chain="ok",
                  validity_days=8150),            # Table 7 / Table 9
        FqdnGroup(count=13, issuer="Netflix Public SHA2 RSA CA 3",
                  validity_days=33, ct_absent=True),  # Table 9: 30–396 d
        FqdnGroup(count=5, issuer="DigiCert", geo_variant=True, ips=8),
        FqdnGroup(count=6, issuer="DigiCert", ips=8),
    ], audience="category:tv"),
    _d("netflix.net", "Netflix", "Netflix", [
        FqdnGroup(count=1, chain="with_root", validity_days=8150)],
       audience="category:tv"),                   # Table 14 (cloud.netflix.net)
    _d("nflxvideo.net", "Netflix", "DigiCert", [
        FqdnGroup(count=5, sdk_stack="netflix-client/cdn", ips=24,
                  geo_variant=True)], audience="sdk"),
    _d("nflxext.com", "Netflix", "DigiCert", [
        FqdnGroup(count=2, sdk_stack="netflix-client/api", ips=6)],
       audience="sdk"),
    # ---- Roku platform ------------------------------------------------------
    _d("roku.com", "Roku", "Roku", [
        FqdnGroup(count=8, chain="ok", sdk_stack="roku-os/main"),
        FqdnGroup(count=6, chain="leaf_only", sdk_stack="roku-os/update"),
        FqdnGroup(count=15, chain="with_root", share="roku-wr"),  # Table 14
        FqdnGroup(count=13, unreachable=True),    # dead by the 2022 probe
    ], audience="sdk"),
    _d("rokutime.com", "Roku", "Roku", [
        FqdnGroup(count=1, chain="with_root")], audience="sdk"),
    _d("mgo.com", "MGO", "DigiCert", [
        FqdnGroup(count=2, sdk_stack="roku-os/main")], audience="sdk"),
    _d("mgo-images.com", "MGO", "DigiCert", [
        FqdnGroup(count=2, sdk_stack="roku-os/media")], audience="sdk"),
    _d("ravm.tv", "RAVM", "Sectigo", [
        FqdnGroup(count=1, sdk_stack="roku-os/media")], audience="sdk"),
    # ---- Samsung ------------------------------------------------------------
    _d("samsungcloudsolution.net", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=7, chain="leaf_only", validity_days=25202,
                  share="samsung-scs")],
       audience="vendor:Samsung"),                # Table 7, len 1
    _d("samsungcloudsolution.com", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=4, chain="leaf_only", validity_days=10950)],
       audience="vendor:Samsung"),
    _d("samsungrm.net", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=1, chain="leaf_only", validity_days=10950)],
       audience="vendor:Samsung"),
    _d("samsungelectronics.com", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=1, chain="with_root", validity_days=10950)],
       audience="vendor:Samsung"),                # Table 14, len 4
    _d("pavv.co.kr", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=1, chain="with_root", validity_days=25202)],
       audience="vendor:Samsung"),
    _d("samsunghrm.com", "Samsung", "Samsung Electronics", [
        FqdnGroup(count=1, chain="duplicate_leaf", validity_days=10950)],
       audience="vendor:Samsung"),
    _d("ueiwsp.com", "Universal Electronics", "Universal Electronics", [
        FqdnGroup(count=1, chain="self_signed", validity_days=21946)],
       audience="vendor:Samsung"),                # Table 14: self-signed
    # ---- other vendor CAs ----------------------------------------------------
    _d("nintendo.net", "Nintendo", "Nintendo", [
        FqdnGroup(count=4, chain="leaf_only", validity_days=9300),   # Table 7
        FqdnGroup(count=14, chain="with_root", validity_days=7233,
                  share="nintendo-wr"),                               # Table 14
    ], audience="vendor:Nintendo"),
    _d("nintendo.com", "Nintendo", "DigiCert", [FqdnGroup(count=2)],
       audience="vendor:Nintendo"),
    _d("playstation.net", "Sony", "Sony Computer Entertainment", [
        FqdnGroup(count=1, chain="leaf_only", validity_days=3650),   # Table 7
        FqdnGroup(count=11, chain="with_root", validity_days=3650,
                  share="psn-wr"),                                    # Table 14
    ], audience="vendor:Sony"),
    _d("sonyentertainmentnetwork.com", "Sony", "Sony Computer Entertainment", [
        FqdnGroup(count=1, chain="leaf_only", validity_days=3650),
        FqdnGroup(count=1, chain="with_root", validity_days=3650),
    ], audience="vendor:Sony"),
    _d("sony.com", "Sony", "DigiCert", [FqdnGroup(count=2)],
       audience="vendor:Sony"),
    _d("lgtvsdp.com", "LG", "LG Electronics", [
        FqdnGroup(count=2, chain="with_root", validity_days=3650)],
       audience="vendor:LG"),                      # Table 14
    _d("lge.com", "LG", "DigiCert", [FqdnGroup(count=2)],
       audience="vendor:LG"),
    _d("lgthinq.com", "LG", "DigiCert", [FqdnGroup(count=1)],
       audience="vendor:LG"),
    _d("meethue.com", "Philips", "Philips", [
        FqdnGroup(count=1, chain="ok", validity_days=7300),          # Table 7
        FqdnGroup(count=2, issuer="GoDaddy")],
       audience="vendor:Philips"),
    _d("philips.com", "Philips", "GlobalSign", [FqdnGroup(count=2)],
       audience="vendor:Philips"),
    _d("tesla.services", "Tesla", "Tesla Motor Services", [
        FqdnGroup(count=4, chain="leaf_only", validity_days=3650),   # Table 7
        FqdnGroup(count=1, chain="with_root", validity_days=3650),   # Table 14
    ], audience="vendor:Tesla"),
    _d("tesla.com", "Tesla", "DigiCert", [FqdnGroup(count=1)],
       audience="vendor:Tesla"),
    _d("canaryis.com", "Canary", "Canary Connect", [
        FqdnGroup(count=2, chain="with_root", validity_days=7240)],
       audience="vendor:Canary"),                  # Table 14, chain len 4
    _d("sense.com", "Sense", "Sense Labs", [
        FqdnGroup(count=2, chain="with_root", validity_days=3650)],
       audience="vendor:Sense"),                   # Table 14, chain len 3
    _d("ecobee.com", "ecobee", "ecobee", [
        FqdnGroup(count=1, chain="with_root", validity_days=7300)],
       audience="vendor:ecobee"),
    _d("dtvce.com", "DirecTV", "ATT Mobility and Entertainment", [
        FqdnGroup(count=1, chain="with_root", validity_days=7300)],
       audience="vendor:DirecTV"),                 # Table 14, chain len 4
    _d("directv.com", "DirecTV", "DigiCert", [FqdnGroup(count=1)],
       audience="vendor:DirecTV"),
    _d("obitalk.com", "Obihai", "Obihai Technology", [
        FqdnGroup(count=1, chain="leaf_only", validity_days=7300)],
       audience="vendor:Obihai"),                  # Table 7
    _d("dishaccess.tv", "Dish Network", "EchoStar", [
        FqdnGroup(count=2, chain="self_signed", validity_days=24855)],
       audience="vendor:Dish Network"),            # Table 14
    _d("dish.com", "Dish Network", "DigiCert", [FqdnGroup(count=1)],
       audience="vendor:Dish Network"),
    _d("tuyaus.com", "Tuya", "Tuya", [
        FqdnGroup(count=1, chain="self_signed", validity_days=36500),
        FqdnGroup(count=1, chain="leaf_only", cn_mismatch=True,
                  validity_days=36500),            # a2.tuyaus.com
    ], audience="vendor:Tuya"),
    _d("tuyacn.com", "Tuya", "Tuya", [
        FqdnGroup(count=1, chain="leaf_only", validity_days=36500)],
       audience="vendor:Tuya"),
    # ---- Table 8: long-expired certificates ----------------------------------
    _d("skyegloup.com", "Denon", "Gandi", [
        FqdnGroup(count=1, expired_not_after="2018-07-31")],
       audience="vendor:Denon"),
    _d("wink.com", "wink", "COMODO", [
        FqdnGroup(count=1, expired_not_after="2019-04-17"),
        FqdnGroup(count=1, issuer="DigiCert")],
       audience="vendor:wink"),
    # ---- SDK platform domains -------------------------------------------------
    _d("sonos.com", "Sonos", "Amazon", [
        FqdnGroup(count=5, sdk_stack="sonos-sdk/main", ips=4),
        FqdnGroup(count=5, issuer="DigiCert")], audience="sdk"),
    _d("pandora.com", "Pandora", "DigiCert", [
        FqdnGroup(count=1, sdk_stack="pandora-client/main", ips=4)],
       audience="sdk"),
    _d("arlo.com", "Arlo", "Entrust", [
        FqdnGroup(count=2, sdk_stack="arlo-sdk/main")], audience="sdk"),
    _d("netgear.com", "NETGEAR", "Entrust", [
        FqdnGroup(count=1, sdk_stack="arlo-sdk/main"),
        FqdnGroup(count=1)], audience="sdk"),
    _d("hdhomerun.com", "SiliconDust", "Sectigo", [
        FqdnGroup(count=2, sdk_stack="hdhomerun/main")], audience="sdk"),
    _d("cast4.audio", "Google", "Google Trust Services", [
        FqdnGroup(count=1, sdk_stack="cast-audio/main")], audience="sdk"),
    # ---- big third-party services ---------------------------------------------
    _d("cloudfront.net", "Amazon", "Amazon", [
        FqdnGroup(count=21, wildcard=True, ips=31, geo_variant=True)],
       audience="common"),
    _d("scdn.co", "Spotify", "DigiCert", [
        FqdnGroup(count=11, wildcard=True, ips=6)], audience="category:speaker"),
    _d("spotify.com", "Spotify", "DigiCert", [
        FqdnGroup(count=8, wildcard=True, ips=6)], audience="category:speaker"),
    _d("facebook.com", "Facebook", "DigiCert", [
        FqdnGroup(count=9, wildcard=True, ips=8, geo_variant=True)],
       audience="category:tv"),
    _d("plex.tv", "Plex", "Let's Encrypt", [
        FqdnGroup(count=11, wildcard=True)], audience="category:nas"),
    _d("sentry-cdn.com", "Sentry", "DigiCert", [FqdnGroup(count=1, ips=4)],
       audience="common"),
    # ---- public-CA certs missing from CT (Section 5.4: 8 certificates) -------
    _d("hp.com", "HP", "DigiCert", [
        FqdnGroup(count=2),
        FqdnGroup(count=1, issuer="Microsoft Corporation", ct_absent=True)],
       audience="vendor:HP"),
    _d("hpeprint.com", "HP", "Microsoft Corporation", [
        FqdnGroup(count=3, ct_absent=True)], audience="vendor:HP"),
    _d("vizio.com", "Vizio", "Apple", [
        FqdnGroup(count=2, ct_absent=True),
        FqdnGroup(count=2, issuer="DigiCert")], audience="vendor:Vizio"),
    _d("tivo.com", "TiVo", "Sectigo", [
        FqdnGroup(count=1, ct_absent=True),
        FqdnGroup(count=2)], audience="vendor:TiVo"),
    _d("xbcs.net", "Belkin", "DigiCert", [
        FqdnGroup(count=2, ct_absent=True),
        FqdnGroup(count=2)], audience="vendor:Belkin"),
)

#: Orgs used for filler third-party application domains.
_FILLER_ORGS = (
    "Akamai", "Fastly", "Cloudflare", "TuneIn", "iHeartMedia",
    "Weather Underground", "Crashlytics", "Mixpanel", "Adobe",
    "Conviva", "ComScore", "Nielsen", "Irdeto", "Ayla Networks",
    "Electric Imp", "PubNub", "Xively", "ThingSpace", "Evrythng",
    "SmartThings Cloud",
)

#: Issuer weights for domains without an explicit issuer, tuned so DigiCert
#: ends near its 47% share of leaf certificates (Figure 5).
FILLER_ISSUER_WEIGHTS = (
    ("DigiCert", 52),
    ("Let's Encrypt", 10),
    ("Amazon", 8),
    ("Sectigo", 6),
    ("GoDaddy", 5),
    ("GlobalSign", 4),
    ("Google Trust Services", 3),
    ("COMODO", 3),
    ("Entrust", 3),
    ("Microsoft Corporation", 2),
    ("Apple", 1),
    ("Starfield", 1),
    ("Certum", 1),
    ("Actalis", 1),
    ("VeriSign", 1),
)

_FILLER_WORDS_A = (
    "api", "cloud", "iot", "app", "device", "link", "connect", "hub",
    "data", "sync", "push", "edge", "core", "net", "home", "cast",
    "stream", "media", "update", "telemetry", "metrics", "portal",
    "service", "gateway", "relay", "bridge", "registry", "vault",
)
_FILLER_WORDS_B = (
    "works", "labs", "ware", "ly", "io-systems", "stack", "grid",
    "sphere", "matic", "sense", "nest", "wave", "pulse", "byte",
)
_FILLER_TLDS = ("com", "net", "io", "tv")


def filler_domain_names(count):
    """Deterministically generate ``count`` filler third-party SLDs."""
    names, i = [], 0
    while len(names) < count:
        a = _FILLER_WORDS_A[i % len(_FILLER_WORDS_A)]
        b = _FILLER_WORDS_B[(i // len(_FILLER_WORDS_A)) % len(_FILLER_WORDS_B)]
        tld = _FILLER_TLDS[(i // 7) % len(_FILLER_TLDS)]
        name = f"{a}-{b}.{tld}"
        if name not in names:
            names.append(name)
        i += 1
    return names


def filler_org(index):
    return _FILLER_ORGS[index % len(_FILLER_ORGS)]
