"""World invariant checker.

A generated :class:`~repro.inspector.generator.World` carries many
cross-referencing structures (devices → stacks → routing → servers →
specs).  ``check_world`` validates every structural invariant and returns
the list of violations — the empty list for a healthy world.  The
integration tests run it on the study world; downstream users extending
the generator get a one-call sanity gate.
"""

from collections import Counter

from repro.inspector.generator import (
    TARGET_SLD_COUNT,
    TARGET_SNI_COUNT,
    TARGET_UNREACHABLE,
    TARGET_USERS,
)
from repro.inspector.timeline import CAPTURE_END, CAPTURE_START
from repro.inspector.vendors import PROFILES_BY_NAME
from repro.tlslib.extensions import ExtensionType


def check_world(world):
    """Return a list of human-readable invariant violations."""
    problems = []
    problems += _check_servers(world)
    problems += _check_devices(world)
    problems += _check_records(world)
    return problems


def _check_servers(world):
    problems = []
    fqdns = [spec.fqdn for spec in world.servers]
    if len(fqdns) != len(set(fqdns)):
        problems.append("duplicate FQDNs in the server catalog")
    if len(world.servers) != TARGET_SNI_COUNT:
        problems.append(
            f"server count {len(world.servers)} != {TARGET_SNI_COUNT}")
    unreachable = sum(1 for spec in world.servers if spec.unreachable)
    if unreachable != TARGET_UNREACHABLE:
        problems.append(
            f"unreachable count {unreachable} != {TARGET_UNREACHABLE}")
    slds = {spec.sld for spec in world.servers}
    if len(slds) != TARGET_SLD_COUNT:
        problems.append(f"SLD count {len(slds)} != {TARGET_SLD_COUNT}")
    for spec in world.servers:
        if not spec.fqdn.endswith(spec.sld):
            problems.append(f"{spec.fqdn} not under its SLD {spec.sld}")
        if spec.chain not in ("ok", "with_root", "leaf_only",
                              "no_intermediate", "self_signed",
                              "duplicate_leaf"):
            problems.append(f"{spec.fqdn}: unknown chain kind "
                            f"{spec.chain!r}")
        if spec.ip_count < 1:
            problems.append(f"{spec.fqdn}: non-positive ip_count")
    return problems


def _check_devices(world):
    problems = []
    if len(world.users) != TARGET_USERS:
        problems.append(f"user count {len(world.users)} != {TARGET_USERS}")
    user_ids = {user.user_id for user in world.users}
    fqdns = {spec.fqdn for spec in world.servers}
    per_vendor = Counter()
    for device in world.devices:
        per_vendor[device.vendor] += 1
        if device.user_id not in user_ids:
            problems.append(f"{device.device_id}: unknown user "
                            f"{device.user_id!r}")
        if "base" not in device.stacks:
            problems.append(f"{device.device_id}: no base stack")
        for fqdn, stack_key in device.routing.items():
            if stack_key not in device.stacks:
                problems.append(f"{device.device_id}: route to missing "
                                f"stack {stack_key!r}")
            if fqdn not in fqdns:
                problems.append(f"{device.device_id}: route to unknown "
                                f"host {fqdn!r}")
        for key, stack in device.stacks.items():
            if not stack.ciphersuites:
                problems.append(f"{device.device_id}/{key}: empty suites")
            if int(ExtensionType.SERVER_NAME) not in stack.extensions:
                problems.append(f"{device.device_id}/{key}: no SNI "
                                "extension")
        profile = PROFILES_BY_NAME.get(device.vendor)
        if profile is None:
            problems.append(f"{device.device_id}: unknown vendor "
                            f"{device.vendor!r}")
    for name, profile in PROFILES_BY_NAME.items():
        if per_vendor.get(name, 0) != profile.devices:
            problems.append(
                f"{name}: {per_vendor.get(name, 0)} devices, profile "
                f"says {profile.devices}")
    return problems


def _check_records(world):
    problems = []
    device_ids = {device.device_id for device in world.devices}
    reachable = {spec.fqdn for spec in world.reachable_servers()}
    users_by_sni = {}
    for record in world.records:
        if record.device_id not in device_ids:
            problems.append(f"record from unknown device "
                            f"{record.device_id!r}")
        if not CAPTURE_START <= record.timestamp <= CAPTURE_END:
            problems.append(f"record at {record.timestamp} outside the "
                            "capture window")
        if not record.sni:
            problems.append("record without SNI")
        else:
            users_by_sni.setdefault(record.sni, set()).add(record.user_id)
    emitting = {record.device_id for record in world.records}
    silent = device_ids - emitting
    if silent:
        problems.append(f"{len(silent)} devices emitted no records")
    uncovered = [fqdn for fqdn in reachable
                 if len(users_by_sni.get(fqdn, ())) < 3]
    if uncovered:
        problems.append(
            f"{len(uncovered)} reachable SNIs observed from <3 users "
            f"(e.g. {uncovered[:3]})")
    return problems
