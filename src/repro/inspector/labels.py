"""User device labels and the identification pipeline.

IoT Inspector users label their devices free-form ("living room echo",
"Wyze cam #2", "tv"); the study recovers ``(vendor, device type)`` from
those labels with NLP-style rules (Section 3, following Section 5.1 of the
IoT Inspector paper).  We reproduce both halves: a noisy label generator
(used by the world generator) and the identification rules (tokenization,
alias resolution, vendor/type keyword matching).  Devices whose labels
cannot be identified are dropped from the study, exactly as in the paper.
"""

import re


#: Brand aliases users actually type.
VENDOR_ALIASES = {
    "alexa": "Amazon", "echo": "Amazon", "firetv": "Amazon",
    "fire": "Amazon", "ring": "Amazon", "kindle": "Amazon",
    "chromecast": "Google", "nest": "Google", "ghome": "Google",
    "wemo": "Belkin", "kasa": "TP-Link", "tplink": "TP-Link",
    "hue": "Philips", "playstation": "Sony", "ps4": "Sony", "ps3": "Sony",
    "bravia": "Sony", "roomba": "iRobot", "shield": "Nvidia",
    "harmony": "Logitech", "heos": "Denon", "webos": "LG",
    "smartthings": "Samsung", "tradfri": "IKEA", "wd": "Western Digital",
    "mycloud": "Western Digital", "diskstation": "Synology",
    "caseta": "Lutron", "obi": "Obihai", "switch": "Nintendo",
    "wiiu": "Nintendo", "unifi": "Ubiquity", "soundtouch": "Bose",
    "musiccast": "Yamaha", "hopper": "Dish Network",
    "genie": "DirecTV", "sleepiq": "Sleep number", "yeelight": "Xiaomi",
    "mibox": "Xiaomi",
}

#: Device-type keywords (used after the vendor is known or alone).
TYPE_KEYWORDS = {
    "cam": "camera", "camera": "camera", "doorbell": "camera",
    "tv": "tv", "television": "tv", "stick": "tv", "dvr": "tv",
    "plug": "plug", "switch": "plug", "outlet": "plug",
    "speaker": "speaker", "soundbar": "speaker",
    "thermostat": "thermostat", "printer": "printer",
    "hub": "hub", "bridge": "hub", "router": "network", "nas": "nas",
    "light": "light", "bulb": "light", "vacuum": "appliance",
}

#: General-purpose computing devices the study excludes (Section 2).
EXCLUDED_KEYWORDS = frozenset({
    "iphone", "android", "phone", "laptop", "macbook", "desktop",
    "pc", "tablet", "ipad", "computer", "workstation",
})

_TOKEN = re.compile(r"[a-z0-9]+")


def _normalize(name):
    """Canonical token form of a vendor name ("TP-Link" → "tplink")."""
    return re.sub(r"[^a-z0-9]", "", name.lower())

#: Decorations users attach that carry no identification signal.
_NOISE_WORDS = (
    "living room", "bedroom", "kitchen", "upstairs", "downstairs",
    "office", "garage", "kids", "main", "old", "new", "my", "the",
)


def make_label(rng, vendor_name, type_name, style=None):
    """Generate a plausible user label for a device.

    ``style`` picks among formats users actually produce; by default it is
    drawn from the rng: full brand+type, alias only, type only (hard to
    identify), or decorated variants with rooms and numbers.
    """
    style = style if style is not None else rng.randrange(6)
    vendor = vendor_name.lower()
    dtype = type_name.lower()
    noise = rng.choice(_NOISE_WORDS)
    if style == 0:
        return f"{vendor} {dtype}"
    if style == 1:
        return f"{noise} {vendor} {dtype}"
    if style == 2:
        return f"{vendor}-{dtype}-{rng.randint(1, 9)}"
    if style == 3:
        return f"{noise} {dtype}"        # vendor missing: identifiable only
        # if the type name is itself an alias (e.g. "echo").
    if style == 4:
        return vendor.upper()
    return f"{vendor} {dtype} #{rng.randint(1, 5)}"


def tokenize(label):
    return _TOKEN.findall(label.lower())


def identify(label, known_vendors):
    """Recover ``(vendor, type_hint)`` from a user label.

    Returns ``(None, None)`` when no vendor can be determined or the label
    names an excluded general-computing device.  ``known_vendors`` is the
    set of canonical vendor names (matching is case-insensitive and also
    checks concatenated bigrams for names like "Western Digital").
    """
    tokens = tokenize(label)
    if any(token in EXCLUDED_KEYWORDS for token in tokens):
        return None, None
    lower_map = {_normalize(name): name for name in known_vendors}
    vendor = None
    for token in tokens:
        if token in lower_map:
            vendor = lower_map[token]
            break
        if token in VENDOR_ALIASES and VENDOR_ALIASES[token] in known_vendors:
            vendor = VENDOR_ALIASES[token]
            break
    if vendor is None:
        for first, second in zip(tokens, tokens[1:]):
            if first + second in lower_map:
                vendor = lower_map[first + second]
                break
    if vendor is None:
        return None, None
    type_hint = None
    for token in tokens:
        if token in TYPE_KEYWORDS:
            type_hint = TYPE_KEYWORDS[token]
            break
    return vendor, type_hint


def label_identifiable(rng, vendor_name, type_name, known_vendors):
    """Generate a label guaranteed to identify as ``vendor_name``.

    The world generator uses this for the devices that survive the
    identification funnel; separately generated unidentifiable labels
    exercise the drop path.
    """
    for _ in range(8):
        label = make_label(rng, vendor_name, type_name)
        vendor, _hint = identify(label, known_vendors)
        if vendor == vendor_name:
            return label
    return f"{vendor_name.lower()} {type_name.lower()}"
