"""JSONL persistence for the anonymized capture.

The paper open-sources an anonymized version of its dataset; this module
round-trips ours: one JSON object per ClientHello record, with the same
schema IoT Inspector exposes (device/user identifiers are already
pseudonymous in the generator).
"""

import json

from repro.inspector.dataset import InspectorDataset
from repro.inspector.model import ClientHelloRecord


def record_to_dict(record):
    """The JSONL row for one record (schema lives on the model)."""
    return record.to_json()


def record_from_dict(data):
    return ClientHelloRecord.from_json(data)


def save_records(records, path):
    """Write records as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")


def load_records(path):
    """Read records from JSONL."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    return records


def load_dataset(path):
    """Read a JSONL capture straight into an :class:`InspectorDataset`."""
    return InspectorDataset(load_records(path))
