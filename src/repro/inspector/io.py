"""JSONL persistence for the anonymized capture.

The paper open-sources an anonymized version of its dataset; this module
round-trips ours: one JSON object per ClientHello record, with the same
schema IoT Inspector exposes (device/user identifiers are already
pseudonymous in the generator).
"""

import json

from repro.inspector.dataset import InspectorDataset
from repro.inspector.model import ClientHelloRecord
from repro.tlslib.versions import TLSVersion


def record_to_dict(record):
    return {
        "device_id": record.device_id,
        "vendor": record.vendor,
        "device_type": record.device_type,
        "user_id": record.user_id,
        "timestamp": record.timestamp,
        "tls_version": int(record.tls_version),
        "ciphersuites": list(record.ciphersuites),
        "extensions": list(record.extensions),
        "sni": record.sni,
    }


def record_from_dict(data):
    return ClientHelloRecord(
        device_id=data["device_id"],
        vendor=data["vendor"],
        device_type=data["device_type"],
        user_id=data["user_id"],
        timestamp=data["timestamp"],
        tls_version=TLSVersion(data["tls_version"]),
        ciphersuites=tuple(data["ciphersuites"]),
        extensions=tuple(data["extensions"]),
        sni=data.get("sni"),
    )


def save_records(records, path):
    """Write records as JSONL."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")


def load_records(path):
    """Read records from JSONL."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    return records


def load_dataset(path):
    """Read a JSONL capture straight into an :class:`InspectorDataset`."""
    return InspectorDataset(load_records(path))
