"""Query layer over a ClientHello capture.

:class:`InspectorDataset` wraps the record stream with the joins every
analysis in Section 4 needs: fingerprint↔vendor and fingerprint↔device
incidence, per-vendor fingerprint sets, SNI↔fingerprint ties, and device /
user registries.  All indexes are built once and cached.
"""

from collections import defaultdict



class InspectorDataset:
    """An immutable view over devices, users, and ClientHello records."""

    def __init__(self, records, devices=None, users=None):
        self.records = list(records)
        self.devices = list(devices or [])
        self.users = list(users or [])
        self._build_indexes()

    @classmethod
    def from_world(cls, world):
        return cls(records=world.records, devices=world.devices,
                   users=world.users)

    def _build_indexes(self):
        self._fingerprints = set()
        self._vendors_by_fp = defaultdict(set)
        self._devices_by_fp = defaultdict(set)
        self._fps_by_vendor = defaultdict(set)
        self._fps_by_device = defaultdict(set)
        self._vendor_by_device = {}
        self._type_by_device = {}
        self._user_by_device = {}
        self._records_by_device = defaultdict(list)
        self._fps_by_sni = defaultdict(set)
        self._devices_by_sni = defaultdict(set)
        self._device_fps_by_sni = defaultdict(set)
        for record in self.records:
            fp = record.fingerprint()
            self._fingerprints.add(fp)
            self._vendors_by_fp[fp].add(record.vendor)
            self._devices_by_fp[fp].add(record.device_id)
            self._fps_by_vendor[record.vendor].add(fp)
            self._fps_by_device[record.device_id].add(fp)
            self._vendor_by_device[record.device_id] = record.vendor
            self._type_by_device[record.device_id] = record.device_type
            self._user_by_device[record.device_id] = record.user_id
            self._records_by_device[record.device_id].append(record)
            if record.sni:
                self._fps_by_sni[record.sni].add(fp)
                self._devices_by_sni[record.sni].add(record.device_id)
                self._device_fps_by_sni[record.sni].add(
                    (record.device_id, fp))

    # --- population ------------------------------------------------------------

    @property
    def device_count(self):
        return len(self._fps_by_device)

    @property
    def vendor_count(self):
        return len(self._fps_by_vendor)

    @property
    def user_count(self):
        return len({record.user_id for record in self.records})

    def vendor_names(self):
        return sorted(self._fps_by_vendor)

    def device_ids(self):
        return sorted(self._fps_by_device)

    def devices_of_vendor(self, vendor):
        return sorted(d for d, v in self._vendor_by_device.items()
                      if v == vendor)

    def device_vendor(self, device_id):
        return self._vendor_by_device[device_id]

    def device_type(self, device_id):
        return self._type_by_device[device_id]

    def device_user(self, device_id):
        return self._user_by_device[device_id]

    def records_of_device(self, device_id):
        return list(self._records_by_device[device_id])

    # --- fingerprints ------------------------------------------------------------

    def fingerprints(self):
        """All distinct 3-tuple fingerprints in the capture."""
        return set(self._fingerprints)

    @property
    def fingerprint_count(self):
        return len(self._fingerprints)

    def fingerprint_vendors(self, fp):
        """Vendors with at least one device proposing ``fp``."""
        return set(self._vendors_by_fp[fp])

    def fingerprint_devices(self, fp):
        return set(self._devices_by_fp[fp])

    def fingerprint_degree(self, fp):
        """The paper's *degree*: number of vendors using ``fp``."""
        return len(self._vendors_by_fp[fp])

    def vendor_fingerprints(self, vendor):
        return set(self._fps_by_vendor[vendor])

    def device_fingerprints(self, device_id):
        return set(self._fps_by_device[device_id])

    # --- SNIs ---------------------------------------------------------------------

    def snis(self):
        return sorted(self._fps_by_sni)

    def sni_fingerprints(self, sni):
        return set(self._fps_by_sni[sni])

    def sni_devices(self, sni):
        return set(self._devices_by_sni[sni])

    def sni_device_fingerprints(self, sni):
        """Set of (device_id, fingerprint) pairs observed toward ``sni``."""
        return set(self._device_fps_by_sni[sni])

    def sni_users(self, sni):
        return {self._user_by_device[d] for d in self._devices_by_sni[sni]}

    # --- convenience ----------------------------------------------------------------

    def ciphersuite_lists(self):
        """Distinct {device, ciphersuite list} tuples (Appendix B analyses)."""
        tuples = set()
        for record in self.records:
            tuples.add((record.device_id, tuple(record.ciphersuites)))
        return tuples

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
