"""Reproduction of "Behind the Scenes: Uncovering TLS and Server
Certificate Practice of IoT Device Vendors in the Wild" (IMC 2023)."""

#: Package version; recorded in every run manifest (keep in sync with
#: pyproject.toml).
__version__ = "1.0.0"
