"""Reproduction of "Behind the Scenes: Uncovering TLS and Server
Certificate Practice of IoT Device Vendors in the Wild" (IMC 2023).

This top level is the curated public surface: importing from ``repro``
alone is enough to configure and run a study (:class:`StudyConfig`,
:func:`get_study`, :func:`run_full_study`), cache its artifacts
(:class:`ArtifactStore`), sweep it across seeds (:class:`SweepRunner`,
:func:`expand_grid`), stream-ingest and serve it (:class:`Ingester`,
:class:`TimelineStream`, :func:`serve_study`, :func:`run_load`), and
match/compare fingerprints at scale (:class:`MatchEngine`,
:class:`SimilarityIndex`, :class:`CorpusIndex`,
:class:`FingerprintVector`).
Everything else is internal layout and may move between releases.
"""

#: Package version; recorded in every run manifest (keep in sync with
#: pyproject.toml).
__version__ = "1.0.0"

from repro.config import DEFAULT_SEED, StudyConfig
from repro.core.pipeline import run_full_study
from repro.ingest.ingester import Ingester
from repro.ingest.loadgen import run_load
from repro.ingest.server import serve_study
from repro.ingest.stream import TimelineStream
from repro.match import (CorpusIndex, FingerprintVector, MatchEngine,
                         SimilarityIndex)
from repro.schema import SCHEMA_VERSION
from repro.store.artifact import ArtifactStore
from repro.study import Study, get_study
from repro.sweep.grid import expand_grid
from repro.sweep.runner import SweepRunner

__all__ = [
    "ArtifactStore",
    "CorpusIndex",
    "DEFAULT_SEED",
    "FingerprintVector",
    "Ingester",
    "MatchEngine",
    "SCHEMA_VERSION",
    "SimilarityIndex",
    "Study",
    "StudyConfig",
    "SweepRunner",
    "TimelineStream",
    "__version__",
    "expand_grid",
    "get_study",
    "run_full_study",
    "run_load",
    "serve_study",
]
