"""One-stop study context: the world, its capture, and its probes.

Building the world and probing 1,151 servers takes a few seconds; tests,
benchmarks, and examples share a memoized :class:`Study` per
:class:`~repro.config.StudyConfig` instead of regenerating.  Expensive
config-independent artifacts (the world, the simulated network, the
library corpus) are additionally memoized per *seed*, so two configs that
differ only in probe concurrency or trust-store selection share them.

A study may also carry a persistent
:class:`~repro.store.artifact.ArtifactStore`
(:meth:`Study.attach_store`): the capture and the certificate dataset
are then read from / written to the on-disk cache, so a fresh process
with a warm cache skips world generation and probing entirely.

The constructor is config-first.  The legacy bare-seed spellings —
``Study(seed=...)``, ``get_study(7)``, ``get_study(seed=7)`` — are
gone: they raise :class:`TypeError` with the exact migration hint; pass
a :class:`StudyConfig` (or nothing, for the default config).
"""

from functools import lru_cache

from repro import obs
from repro.config import DEFAULT_SEED, MAJOR_STORES, StudyConfig
from repro.inspector.dataset import InspectorDataset
from repro.inspector.generator import WorldGenerator
from repro.libraries.corpus import build_default_corpus
from repro.probing.engine import ProbeEngine
from repro.probing.network import SimulatedNetwork
from repro.store.artifact import MISS
from repro.x509.validation import ChainValidator

__all__ = ["DEFAULT_SEED", "Study", "StudyConfig", "get_study"]


@lru_cache(maxsize=4)
def _world_for_seed(seed):
    return WorldGenerator(seed=seed).generate()


@lru_cache(maxsize=4)
def _network_for_seed(seed):
    return SimulatedNetwork(_world_for_seed(seed))


@lru_cache(maxsize=1)
def _shared_corpus():
    return build_default_corpus()


def _promote_seed(config, seed, caller):
    """The config-first enforcement shared by Study and get_study.

    The bare-seed shim went through its deprecation cycle
    (DeprecationWarning since the config-first PR); it now fails loudly
    with the migration spelling instead of silently promoting.
    """
    if seed is not None:
        raise TypeError(
            f"{caller}(seed={seed!r}) was removed; pass "
            f"{caller}(StudyConfig(seed={seed!r})) instead")
    if config is None:
        return StudyConfig(seed=DEFAULT_SEED)
    if isinstance(config, int):
        raise TypeError(
            f"{caller}({config!r}) was removed; pass "
            f"{caller}(StudyConfig(seed={config!r})) instead")
    return config


class Study:
    """Lazily-built handles to every artifact of one study run."""

    def __init__(self, config=None, seed=None, store=None):
        self.config = _promote_seed(config, seed, "Study")
        self.seed = self.config.seed
        self.store = store
        self._world = None
        self._dataset = None
        self._corpus = None
        self._network = None
        self._certificates = None
        self._trust_store = None

    def attach_store(self, store):
        """Attach (or detach, with ``None``) an artifact store."""
        self.store = store
        return self

    def adopt_certificates(self, certificates):
        """Use a pre-built certificate dataset instead of probing.

        A seam for the conformance harness (:mod:`repro.verify`) and for
        tests: an equivalence-matrix mode probes through a
        :class:`~repro.probing.engine.FaultInjector` with its own engine
        and hands the result to a *fresh* ``Study`` here.  Never call
        this on the shared memoized study — adopt only on instances you
        own.
        """
        self._certificates = certificates
        return self

    def _cached(self, stage):
        if self.store is None:
            return MISS
        return self.store.get(self.config, stage)

    def _store_put(self, stage, value):
        if self.store is not None:
            self.store.put(self.config, stage, value)

    @property
    def world(self):
        if self._world is None:
            with obs.span("study.world"):
                self._world = _world_for_seed(self.seed)
        return self._world

    @property
    def dataset(self):
        """The ClientHello capture (client-side analyses, Section 4).

        Store-backed: with an attached artifact store, a cached capture
        is reused without generating the world.
        """
        if self._dataset is None:
            with obs.span("study.dataset") as span:
                dataset = self._cached("capture")
                if dataset is MISS:
                    dataset = InspectorDataset.from_world(self.world)
                    self._store_put("capture", dataset)
                self._dataset = dataset
                span.incr("records", len(dataset.records))
        return self._dataset

    @property
    def corpus(self):
        """The 6,891-entry known-library fingerprint corpus."""
        if self._corpus is None:
            with obs.span("study.corpus"):
                self._corpus = _shared_corpus()
        return self._corpus

    @property
    def network(self):
        """The simulated Internet with issued certificates."""
        if self._network is None:
            self.world  # built (and traced) as its own stage
            with obs.span("study.network"):
                self._network = _network_for_seed(self.seed)
        return self._network

    @property
    def ecosystem(self):
        return self.network.ecosystem

    @property
    def certificates(self):
        """The three-vantage certificate dataset (Section 5).

        Probed by the parallel :class:`~repro.probing.engine.ProbeEngine`
        under the config's concurrency and retry policy; the output is
        byte-identical across worker counts for a given seed.
        Store-backed: with an attached artifact store, a cached dataset
        is reused without building the network or probing.
        """
        if self._certificates is None:
            with obs.span("study.certificates") as span:
                certificates = self._cached("certificates")
                if certificates is MISS:
                    snis = [spec.fqdn for spec in self.world.servers]
                    engine = ProbeEngine(self.network,
                                         vantages=self.config.vantages,
                                         jobs=self.config.probe_jobs,
                                         retry=self.config.retry)
                    certificates = engine.probe_all(snis)
                    span.incr("jobs", self.config.probe_jobs)
                    self._store_put("certificates", certificates)
                self._certificates = certificates
                span.incr("snis", len(certificates))
        return self._certificates

    @property
    def trust_store(self):
        """The union of the config's selected major stores (built once).

        Selection is order-insensitive: any permutation of all major
        stores reuses the prebuilt union store.
        """
        if self._trust_store is None:
            with obs.span("study.trust_store"):
                if set(self.config.trust_stores) == set(MAJOR_STORES):
                    self._trust_store = self.ecosystem.union_store
                else:
                    selected = [self.ecosystem.stores[name]
                                for name in self.config.trust_stores]
                    self._trust_store = selected[0].union(*selected[1:])
        return self._trust_store

    def validator(self):
        """A Zeek-style validator over the config's trust stores."""
        return ChainValidator(self.trust_store)


@lru_cache(maxsize=8)
def _study_for_config(config):
    return Study(config=config)


def get_study(config=None, seed=None):
    """The memoized study context for a config.

    Config-first: pass a :class:`StudyConfig` (or nothing for the
    default).  The legacy bare-seed spellings — ``get_study(seed=7)``
    and positional ``get_study(7)`` — raise :class:`TypeError` with the
    migration hint.  Equal configs share one :class:`Study`.
    """
    return _study_for_config(_promote_seed(config, seed, "get_study"))
