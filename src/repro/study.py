"""One-stop study context: the world, its capture, and its probes.

Building the world and probing 1,151 servers takes a few seconds; tests,
benchmarks, and examples share a memoized :class:`Study` per
:class:`~repro.config.StudyConfig` instead of regenerating.  Expensive
config-independent artifacts (the world, the simulated network, the
library corpus) are additionally memoized per *seed*, so two configs that
differ only in probe concurrency or trust-store selection share them.
"""

from functools import lru_cache

from repro import obs
from repro.config import DEFAULT_SEED, MAJOR_STORES, StudyConfig
from repro.inspector.dataset import InspectorDataset
from repro.inspector.generator import WorldGenerator
from repro.libraries.corpus import build_default_corpus
from repro.probing.engine import ProbeEngine
from repro.probing.network import SimulatedNetwork
from repro.x509.validation import ChainValidator

__all__ = ["DEFAULT_SEED", "Study", "StudyConfig", "get_study"]


@lru_cache(maxsize=4)
def _world_for_seed(seed):
    return WorldGenerator(seed=seed).generate()


@lru_cache(maxsize=4)
def _network_for_seed(seed):
    return SimulatedNetwork(_world_for_seed(seed))


@lru_cache(maxsize=1)
def _shared_corpus():
    return build_default_corpus()


class Study:
    """Lazily-built handles to every artifact of one study run."""

    def __init__(self, config=None, seed=None):
        if config is None:
            config = StudyConfig(
                seed=DEFAULT_SEED if seed is None else seed)
        elif seed is not None and seed != config.seed:
            raise ValueError("pass either a config or a seed, not both")
        self.config = config
        self.seed = config.seed
        self._world = None
        self._dataset = None
        self._corpus = None
        self._network = None
        self._certificates = None
        self._trust_store = None

    @property
    def world(self):
        if self._world is None:
            with obs.span("study.world"):
                self._world = _world_for_seed(self.seed)
        return self._world

    @property
    def dataset(self):
        """The ClientHello capture (client-side analyses, Section 4)."""
        if self._dataset is None:
            world = self.world
            with obs.span("study.dataset") as span:
                self._dataset = InspectorDataset.from_world(world)
                span.incr("records", len(self._dataset.records))
        return self._dataset

    @property
    def corpus(self):
        """The 6,891-entry known-library fingerprint corpus."""
        if self._corpus is None:
            with obs.span("study.corpus"):
                self._corpus = _shared_corpus()
        return self._corpus

    @property
    def network(self):
        """The simulated Internet with issued certificates."""
        if self._network is None:
            self.world  # built (and traced) as its own stage
            with obs.span("study.network"):
                self._network = _network_for_seed(self.seed)
        return self._network

    @property
    def ecosystem(self):
        return self.network.ecosystem

    @property
    def certificates(self):
        """The three-vantage certificate dataset (Section 5).

        Probed by the parallel :class:`~repro.probing.engine.ProbeEngine`
        under the config's concurrency and retry policy; the output is
        byte-identical across worker counts for a given seed.
        """
        if self._certificates is None:
            snis = [spec.fqdn for spec in self.world.servers]
            network = self.network
            with obs.span("study.certificates") as span:
                engine = ProbeEngine(network,
                                     vantages=self.config.vantages,
                                     jobs=self.config.probe_jobs,
                                     retry=self.config.retry)
                self._certificates = engine.probe_all(snis)
                span.incr("snis", len(snis))
                span.incr("jobs", self.config.probe_jobs)
        return self._certificates

    @property
    def trust_store(self):
        """The union of the config's selected major stores (built once)."""
        if self._trust_store is None:
            with obs.span("study.trust_store"):
                if tuple(self.config.trust_stores) == MAJOR_STORES:
                    self._trust_store = self.ecosystem.union_store
                else:
                    selected = [self.ecosystem.stores[name]
                                for name in self.config.trust_stores]
                    self._trust_store = selected[0].union(*selected[1:])
        return self._trust_store

    def validator(self):
        """A Zeek-style validator over the config's trust stores."""
        return ChainValidator(self.trust_store)


@lru_cache(maxsize=8)
def _study_for_config(config):
    return Study(config=config)


def get_study(config=None, seed=None):
    """The memoized study context for a config.

    Back-compat shim: ``get_study(seed=7)`` and the legacy positional
    ``get_study(7)`` both promote the bare seed to
    ``StudyConfig(seed=7)``.  Equal configs share one :class:`Study`.
    """
    if isinstance(config, int):
        config, seed = None, config
    if config is None:
        config = StudyConfig(seed=DEFAULT_SEED if seed is None else seed)
    elif seed is not None and seed != config.seed:
        raise ValueError("pass either a config or a seed, not both")
    return _study_for_config(config)
