"""One-stop study context: the world, its capture, and its probes.

Building the world and probing 1,151 servers takes a few seconds; tests,
benchmarks, and examples share a memoized :class:`Study` per seed instead
of regenerating.
"""

from functools import lru_cache

from repro.inspector.dataset import InspectorDataset
from repro.inspector.generator import WorldGenerator
from repro.libraries.corpus import build_default_corpus
from repro.probing.network import SimulatedNetwork
from repro.probing.prober import Prober
from repro.x509.validation import ChainValidator

DEFAULT_SEED = 2023


class Study:
    """Lazily-built handles to every artifact of one study run."""

    def __init__(self, seed=DEFAULT_SEED):
        self.seed = seed
        self._world = None
        self._dataset = None
        self._corpus = None
        self._network = None
        self._certificates = None

    @property
    def world(self):
        if self._world is None:
            self._world = WorldGenerator(seed=self.seed).generate()
        return self._world

    @property
    def dataset(self):
        """The ClientHello capture (client-side analyses, Section 4)."""
        if self._dataset is None:
            self._dataset = InspectorDataset.from_world(self.world)
        return self._dataset

    @property
    def corpus(self):
        """The 6,891-entry known-library fingerprint corpus."""
        if self._corpus is None:
            self._corpus = build_default_corpus()
        return self._corpus

    @property
    def network(self):
        """The simulated Internet with issued certificates."""
        if self._network is None:
            self._network = SimulatedNetwork(self.world)
        return self._network

    @property
    def ecosystem(self):
        return self.network.ecosystem

    @property
    def certificates(self):
        """The three-vantage certificate dataset (Section 5)."""
        if self._certificates is None:
            snis = [spec.fqdn for spec in self.world.servers]
            self._certificates = Prober(self.network).probe_all(snis)
        return self._certificates

    def validator(self):
        """A Zeek-style validator over the union of the major stores."""
        return ChainValidator(self.ecosystem.union_store)


@lru_cache(maxsize=4)
def get_study(seed=DEFAULT_SEED):
    """The memoized study context for a seed."""
    return Study(seed=seed)
